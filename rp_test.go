package rp

import (
	"bytes"
	"strings"
	"testing"
)

// paperEvents is the running example of the paper as an event sequence.
func paperEvents() EventSequence {
	rows := map[int64]string{
		1: "abg", 2: "acd", 3: "abef", 4: "abcd", 5: "cdefg", 6: "efg",
		7: "abcg", 9: "cd", 10: "cdef", 11: "abef", 12: "abcdefg", 14: "abg",
	}
	var events EventSequence
	for ts, items := range rows {
		for _, r := range items {
			events = append(events, Event{Item: string(r), TS: ts})
		}
	}
	return events
}

func TestMineFacadePaperExample(t *testing.T) {
	db := FromEvents(paperEvents())
	patterns, err := Mine(db, Options{Per: 2, MinPS: 3, MinRec: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 8 {
		t.Fatalf("got %d patterns, want the 8 of Table 2", len(patterns))
	}
	var ab *Pattern
	for i := range patterns {
		if len(patterns[i].Items) == 2 &&
			patterns[i].Items[0] == "a" && patterns[i].Items[1] == "b" {
			ab = &patterns[i]
		}
	}
	if ab == nil {
		t.Fatal("{a,b} missing")
	}
	if ab.Support != 7 || ab.Recurrence != 2 {
		t.Errorf("{a,b} = %+v, want sup 7 rec 2", ab)
	}
	want := []Interval{{Start: 1, End: 4, PS: 3}, {Start: 11, End: 14, PS: 3}}
	if len(ab.Intervals) != 2 || ab.Intervals[0] != want[0] || ab.Intervals[1] != want[1] {
		t.Errorf("{a,b} intervals = %v, want %v", ab.Intervals, want)
	}
}

func TestMineFacadeRejectsBadOptions(t *testing.T) {
	db := FromEvents(paperEvents())
	if _, err := Mine(db, Options{}); err == nil {
		t.Error("zero options must be rejected")
	}
	if _, err := MineRaw(db, Options{Per: -1, MinPS: 1, MinRec: 1}); err == nil {
		t.Error("negative per must be rejected")
	}
}

func TestFacadeRoundTripAndStats(t *testing.T) {
	db := FromEvents(paperEvents())
	var buf bytes.Buffer
	if err := WriteDB(&buf, db); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := ComputeStats(db), ComputeStats(db2)
	if s1 != s2 {
		t.Errorf("round trip changed stats: %v vs %v", s1, s2)
	}
	if s1.Transactions != 12 || s1.DistinctItems != 7 {
		t.Errorf("stats = %+v", s1)
	}
}

func TestMinPSFromPercentFacade(t *testing.T) {
	db := FromEvents(paperEvents())
	if got := MinPSFromPercent(db, 25); got != 3 {
		t.Errorf("25%% of 12 transactions = %d, want 3", got)
	}
	if got := MinPSFromPercent(db, 0.0001); got != 1 {
		t.Errorf("tiny percentage must clamp to 1, got %d", got)
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder()
	b.Add("x", 1)
	b.Add("y", 1)
	b.Add("x", 3)
	db := b.Build()
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	patterns, err := Mine(db, Options{Per: 2, MinPS: 2, MinRec: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range patterns {
		if len(p.Items) == 1 && p.Items[0] == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("x should recur: %+v", patterns)
	}
}

func TestReadDBRejectsGarbage(t *testing.T) {
	if _, err := ReadDB(strings.NewReader("garbage line\n")); err == nil {
		t.Error("garbage input must fail")
	}
}

func TestMineFuncFacade(t *testing.T) {
	db := FromEvents(paperEvents())
	o := Options{Per: 2, MinPS: 3, MinRec: 2}
	var streamed []Pattern
	if err := MineFunc(db, o, func(p Pattern) bool {
		streamed = append(streamed, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	batch, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d patterns, batch %d", len(streamed), len(batch))
	}
	for _, p := range streamed {
		if len(p.Items) == 0 || p.Support == 0 {
			t.Errorf("malformed streamed pattern %+v", p)
		}
	}
	if err := MineFunc(db, Options{}, func(Pattern) bool { return true }); err == nil {
		t.Error("invalid options must fail")
	}
}

func TestWriteDBBinaryFacade(t *testing.T) {
	db := FromEvents(paperEvents())
	var buf bytes.Buffer
	if err := WriteDBBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDB(&buf) // auto-detects binary
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("binary round trip: %d vs %d transactions", got.Len(), db.Len())
	}
}
