package rp

import (
	"context"

	"github.com/recurpat/rp/internal/core"
)

// Incremental maintains the RP-list statistics of Algorithm 1 over an
// append-only transaction stream, so the candidate items for any prefix of
// the stream are available in O(1) per appended item without rescanning
// history — the online counterpart of batch mining. It is the public,
// name-resolving face of the core accumulator (mirroring how Pattern
// resolves ItemIDs): transactions are appended as item names, candidates
// come back as names.
//
// The accumulated transactions are retained, so a full RP-growth run over
// everything seen so far is available at any point via Mine or
// MineContext.
//
// An Incremental is not safe for concurrent use; callers interleaving
// Append with Mine from multiple goroutines must synchronize.
type Incremental struct {
	inc *core.Incremental
}

// NewIncremental validates the thresholds with Options.Validate and
// returns an empty accumulator.
func NewIncremental(o Options) (*Incremental, error) {
	inc, err := core.NewIncremental(o)
	if err != nil {
		return nil, err
	}
	return &Incremental{inc: inc}, nil
}

// Append adds one transaction. Timestamps must be strictly increasing
// across calls (the stream is temporally ordered); items may repeat within
// a call and are deduplicated.
func (inc *Incremental) Append(ts int64, items ...string) error {
	return inc.inc.Append(ts, items...)
}

// Len reports the number of transactions appended so far.
func (inc *Incremental) Len() int { return inc.inc.Len() }

// CandidateItem is one row of the live RP-list: an item that could still
// be part of a recurring pattern over the stream seen so far, with its
// support and its estimated maximum recurrence (the Erec bound).
type CandidateItem struct {
	Item    string
	Support int
	Erec    int
}

// Candidates returns the current RP-list snapshot — items whose estimated
// maximum recurrence reaches MinRec — in support-descending order with
// names resolved. The accumulator state is not disturbed.
func (inc *Incremental) Candidates() []CandidateItem {
	dict := inc.inc.DB().Dict
	entries := inc.inc.Candidates()
	out := make([]CandidateItem, len(entries))
	for i, e := range entries {
		out[i] = CandidateItem{Item: dict.Name(e.Item), Support: e.Support, Erec: e.Erec}
	}
	return out
}

// DB materializes the accumulated stream as a database. The returned DB
// aliases internal state and must not be used across subsequent Appends.
func (inc *Incremental) DB() *DB { return inc.inc.DB() }

// Mine runs RP-growth over everything appended so far and returns the
// recurring patterns with names resolved, in canonical order.
func (inc *Incremental) Mine() ([]Pattern, error) {
	return inc.MineContext(context.Background())
}

// MineContext is Mine with cancellation (see the package-level
// MineContext for the cancellation contract).
func (inc *Incremental) MineContext(ctx context.Context) ([]Pattern, error) {
	res, err := inc.inc.MineContext(ctx)
	if err != nil {
		return nil, err
	}
	return resolve(inc.DB(), res), nil
}
