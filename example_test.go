package rp_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"github.com/recurpat/rp"
)

// Example mines the paper's running example (Figure 1) and prints the two
// recurring pairs of its Table 2.
func Example() {
	series := []struct {
		ts    int64
		items string
	}{
		{1, "a b g"}, {2, "a c d"}, {3, "a b e f"}, {4, "a b c d"},
		{5, "c d e f g"}, {6, "e f g"}, {7, "a b c g"}, {9, "c d"},
		{10, "c d e f"}, {11, "a b e f"}, {12, "a b c d e f g"}, {14, "a b g"},
	}
	b := rp.NewBuilder()
	for _, row := range series {
		for _, item := range strings.Fields(row.items) {
			b.Add(item, row.ts)
		}
	}
	patterns, err := rp.Mine(b.Build(), rp.Options{Per: 2, MinPS: 3, MinRec: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range patterns {
		if len(p.Items) != 2 || p.Items[0] != "a" && p.Items[0] != "c" {
			continue
		}
		fmt.Printf("%v support=%d recurrence=%d intervals=%v\n",
			p.Items, p.Support, p.Recurrence, p.Intervals)
	}
	// Output:
	// [a b] support=7 recurrence=2 intervals=[{1 4 3} {11 14 3}]
	// [c d] support=6 recurrence=2 intervals=[{2 5 3} {9 12 3}]
}

// ExampleMine_seasonal shows the seasonal-association use case from the
// paper's introduction: jackets and gloves co-sell every winter, and the
// pattern's interesting periodic intervals are exactly the two winters.
func ExampleMine_seasonal() {
	b := rp.NewBuilder()
	for day := int64(1); day <= 730; day++ {
		doy := day % 365
		if doy < 60 || doy >= 335 { // winter
			b.Add("jackets", day)
			b.Add("gloves", day)
		}
		b.Add("milk", day)
	}
	patterns, err := rp.Mine(b.Build(), rp.Options{Per: 7, MinPS: 30, MinRec: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range patterns {
		if len(p.Items) == 2 && p.Items[0] == "jackets" && p.Items[1] == "gloves" {
			fmt.Printf("%v recurs %d times\n", p.Items, p.Recurrence)
			for _, iv := range p.Intervals {
				fmt.Printf("  days %d..%d (%d sales)\n", iv.Start, iv.End, iv.PS)
			}
		}
	}
	// Output:
	// [jackets gloves] recurs 3 times
	//   days 1..59 (59 sales)
	//   days 335..424 (90 sales)
	//   days 700..730 (31 sales)
}

// ExampleMineContext shows the cancellation contract of the context-aware
// entry points: a fired context stops mining at the next subtree-task
// boundary and the error both matches the context error and unwraps to a
// *rp.CancelError. An un-fired context behaves exactly like rp.Mine.
func ExampleMineContext() {
	b := rp.NewBuilder()
	for ts := int64(1); ts <= 100; ts++ {
		b.Add("heartbeat", ts)
	}
	db := b.Build()
	o := rp.Options{Per: 2, MinPS: 3, MinRec: 1}

	// A live context mines normally.
	patterns, err := rp.MineContext(context.Background(), db, o)
	fmt.Println(len(patterns), err)

	// A context that is already done stops before any work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = rp.MineContext(ctx, db, o)
	var cerr *rp.CancelError
	fmt.Println(errors.Is(err, context.Canceled), errors.As(err, &cerr))
	// Output:
	// 1 <nil>
	// true true
}

// ExampleMinPSFromPercent converts a paper-style percentage threshold into
// an absolute periodic support.
func ExampleMinPSFromPercent() {
	b := rp.NewBuilder()
	for ts := int64(1); ts <= 200; ts++ {
		b.Add("x", ts)
	}
	db := b.Build()
	fmt.Println(rp.MinPSFromPercent(db, 2.5))
	// Output:
	// 5
}
