#!/usr/bin/env bash
# smoke_rpserved.sh — end-to-end lifecycle test of the mining service:
# build, start on an ephemeral port, health-check, mine twice (the second
# must be a cache hit), verify the stats counters, walk the request
# journal (/debug/requests, HTML and JSON) and validate a downloaded
# per-request trace with rptrace, check the continuous profiler listed a
# capture and the journal carries per-request cost, exercise the dataset
# registry (upload → mine by fingerprint → cached repeat → delete, with
# ingest-phase attribution visible in the journal and /metrics), then
# SIGTERM and check the drain path exits cleanly. Needs curl; run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/rpgen" ./cmd/rpgen
go build -o "$workdir/rpserved" ./cmd/rpserved
go build -o "$workdir/rptrace" ./cmd/rptrace

echo "== generate a small dataset"
"$workdir/rpgen" -dataset shop14 -scale 0.02 -out "$workdir/shop.tdb"

echo "== start rpserved"
"$workdir/rpserved" -db shop="$workdir/shop.tdb" -listen 127.0.0.1:0 \
    -profile-interval=1s \
    >"$workdir/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^rpserved: listening on //p' "$workdir/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address"; cat "$workdir/serve.log"; exit 1; }
echo "   serving on $addr"

echo "== healthz"
grep -q ok <<<"$(curl -sf "http://$addr/healthz")"

echo "== mine (cold)"
req='{"db":"shop","per":60,"minPSPercent":2,"minRec":1,"maxLen":2}'
cold=$(curl -sf "http://$addr/v1/mine" -d "$req")
grep -q '"cached": false' <<<"$cold" || { echo "first mine was unexpectedly cached: $cold"; exit 1; }

echo "== mine (cached)"
warm=$(curl -sf "http://$addr/v1/mine" -d "$req")
grep -q '"cached": true' <<<"$warm" || { echo "second mine missed the cache: $warm"; exit 1; }

echo "== stats record the hit"
stats=$(curl -sf "http://$addr/v1/stats")
grep -q '"cacheHits": 1' <<<"$stats" || { echo "stats missing cacheHits=1: $stats"; exit 1; }
grep -q '"mined": 1' <<<"$stats" || { echo "stats missing mined=1: $stats"; exit 1; }

echo "== stats expose histogram bucket bounds"
grep -q '"leNanos"' <<<"$stats" || { echo "stats buckets missing leNanos bounds: $stats"; exit 1; }

echo "== expvar is served"
grep -q '"rpserved"' <<<"$(curl -sf "http://$addr/debug/vars")"

echo "== /metrics scrape"
metrics=$(curl -sf "http://$addr/metrics")
grep -q '^rpserved_mining_seconds_bucket{le="+Inf"} 1$' <<<"$metrics" \
    || { echo "metrics missing the mining-time histogram: $metrics"; exit 1; }
grep -q '^rpserved_phase_seconds_bucket{phase="mine",le="+Inf"} 1$' <<<"$metrics" \
    || { echo "metrics missing the mine phase histogram: $metrics"; exit 1; }
grep -q '^rpserved_cache_hits_total 1$' <<<"$metrics" \
    || { echo "metrics missing the cache-hit counter: $metrics"; exit 1; }
grep -q '^rpserved_cache_hit_ratio ' <<<"$metrics" \
    || { echo "metrics missing the cache-hit-ratio gauge: $metrics"; exit 1; }
grep -q '^go_goroutines ' <<<"$metrics" \
    || { echo "metrics missing the goroutine gauge: $metrics"; exit 1; }
grep -q '^go_heap_inuse_bytes ' <<<"$metrics" \
    || { echo "metrics missing the heap gauge: $metrics"; exit 1; }

echo "== request journal (JSON)"
journal=$(curl -sf "http://$addr/debug/requests?format=json")
grep -q '"total": 2' <<<"$journal" || { echo "journal total != 2: $journal"; exit 1; }
grep -q '"outcome": "ok"' <<<"$journal" || { echo "journal missing ok entry: $journal"; exit 1; }
grep -q '"outcome": "cache-hit"' <<<"$journal" || { echo "journal missing cache-hit entry: $journal"; exit 1; }
grep -q '"phase": "mine"' <<<"$journal" || { echo "journal entries lack phase breakdowns: $journal"; exit 1; }

echo "== request journal (HTML)"
html=$(curl -sf "http://$addr/debug/requests")
grep -q '<title>rpserved request journal</title>' <<<"$html" \
    || { echo "journal HTML page malformed: $html"; exit 1; }
grep -q 'cache-hit' <<<"$html" || { echo "journal HTML missing the cache-hit row: $html"; exit 1; }

echo "== per-request trace validates"
rid=$(grep -o '"id": "[^"]*"' <<<"$journal" | head -1 | sed 's/"id": "\(.*\)"/\1/')
[ -n "$rid" ] || { echo "no request id found in journal: $journal"; exit 1; }
curl -sf "http://$addr/debug/requests/trace?id=$rid" -o "$workdir/run.json"
"$workdir/rptrace" "$workdir/run.json"

echo "== journal reports per-request cost"
grep -q '"allocBytes": [1-9]' <<<"$journal" \
    || { echo "no journal row reports nonzero alloc bytes: $journal"; exit 1; }

echo "== continuous profiler listed a capture"
profiles=""
for _ in $(seq 1 50); do
    profiles=$(curl -sf "http://$addr/debug/profiles?format=json")
    grep -q '"kind": "cpu"' <<<"$profiles" && break
    sleep 0.2
done
grep -q '"kind": "cpu"' <<<"$profiles" || { echo "no cpu capture listed: $profiles"; exit 1; }
cap_id=$(grep -o '"id": "[0-9]*-cpu"' <<<"$profiles" | head -1 | sed 's/"id": "\(.*\)"/\1/')
[ -n "$cap_id" ] || { echo "no capture id in listing: $profiles"; exit 1; }
curl -sf "http://$addr/debug/profiles/$cap_id" -o "$workdir/capture.pprof"
[ -s "$workdir/capture.pprof" ] || { echo "downloaded capture $cap_id is empty"; exit 1; }

echo "== access log lines"
grep -q 'outcome=ok' "$workdir/serve.log" || { echo "missing ok access-log line"; cat "$workdir/serve.log"; exit 1; }
grep -q 'outcome=cache-hit' "$workdir/serve.log" || { echo "missing cache-hit access-log line"; cat "$workdir/serve.log"; exit 1; }

echo "== dataset upload"
up=$(curl -sf "http://$addr/v1/datasets" --data-binary @"$workdir/shop.tdb")
fp=$(grep -o '"fingerprint": "[0-9a-f]*"' <<<"$up" | head -1 | sed 's/.*"\([0-9a-f]*\)"$/\1/')
[ ${#fp} -eq 16 ] || { echo "upload returned no fingerprint: $up"; exit 1; }
grep -q '"existing": false' <<<"$up" || { echo "fresh upload marked existing: $up"; exit 1; }
echo "   registered $fp"

echo "== dataset listing"
ls_json=$(curl -sf "http://$addr/v1/datasets")
grep -q "\"fingerprint\": \"$fp\"" <<<"$ls_json" || { echo "listing missing $fp: $ls_json"; exit 1; }
grep -q '"count": 1' <<<"$ls_json" || { echo "listing count != 1: $ls_json"; exit 1; }

echo "== mine by fingerprint hits the named mine's cache entry"
# The uploaded file is the same content as the preloaded "shop" database,
# and the result cache is keyed by content fingerprint — so mining the
# dataset with the options already mined under the name is a cache hit
# across the two addressing schemes.
xnaming=$(curl -sf "http://$addr/v1/mine" -d "{\"dataset\":\"$fp\",\"per\":60,\"minPSPercent\":2,\"minRec\":1,\"maxLen\":2}")
grep -q '"cached": true' <<<"$xnaming" || { echo "fp mine of identical content+options missed the cache: $xnaming"; exit 1; }
cold_count=$(grep -o '"count": [0-9]*' <<<"$cold" | head -1)
fp_count=$(grep -o '"count": [0-9]*' <<<"$xnaming" | head -1)
[ "$cold_count" = "$fp_count" ] || { echo "fp mine found $fp_count, named mine $cold_count"; exit 1; }

echo "== mine by fingerprint (cold: new options)"
fpreq="{\"dataset\":\"$fp\",\"per\":60,\"minPSPercent\":2,\"minRec\":1,\"maxLen\":3}"
fpcold=$(curl -sf "http://$addr/v1/mine" -d "$fpreq")
grep -q '"cached": false' <<<"$fpcold" || { echo "first fp mine with new options was cached: $fpcold"; exit 1; }

echo "== mine by fingerprint (cached: no body, no parse)"
fpwarm=$(curl -sf "http://$addr/v1/mine" -d "$fpreq")
grep -q '"cached": true' <<<"$fpwarm" || { echo "repeat fp mine missed the cache: $fpwarm"; exit 1; }

echo "== ingest phase attributed to the upload only"
journal2=$(curl -sf "http://$addr/debug/requests?format=json")
grep -q '"outcome": "uploaded"' <<<"$journal2" || { echo "journal missing the upload: $journal2"; exit 1; }
n_ingest=$(grep -c '"phase": "ingest"' <<<"$journal2" || true)
[ "$n_ingest" -eq 1 ] || { echo "want exactly 1 ingest phase entry (the upload), got $n_ingest: $journal2"; exit 1; }

echo "== registry metrics"
metrics2=$(curl -sf "http://$addr/metrics")
grep -q '^rpserved_uploads_total 1$' <<<"$metrics2" || { echo "metrics missing uploads counter: $metrics2"; exit 1; }
grep -q '^rpserved_datasets 1$' <<<"$metrics2" || { echo "metrics missing datasets gauge: $metrics2"; exit 1; }
grep -q '^rpserved_phase_seconds_bucket{phase="ingest",le="+Inf"} 1$' <<<"$metrics2" \
    || { echo "metrics missing the ingest phase histogram: $metrics2"; exit 1; }

echo "== dataset delete"
del_status=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$addr/v1/datasets/$fp")
[ "$del_status" = "204" ] || { echo "delete returned $del_status"; exit 1; }
gone_status=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/mine" -d "$fpreq")
[ "$gone_status" = "404" ] || { echo "mine after delete returned $gone_status"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "server did not exit after SIGTERM"; cat "$workdir/serve.log"; exit 1
fi
wait "$server_pid" 2>/dev/null || { echo "server exited non-zero"; cat "$workdir/serve.log"; exit 1; }
grep -q "rpserved: stopped" "$workdir/serve.log" || { echo "missing clean-stop log line"; cat "$workdir/serve.log"; exit 1; }
server_pid=""

echo "== ok"
