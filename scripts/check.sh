#!/usr/bin/env bash
# check.sh — the repository gate. Runs every static check and the
# race-enabled test suite; CI fails on the first red step. Run it locally
# as `make check` (or ./scripts/check.sh) before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "rpvet (determinism, errcheck, layering, concurrency, sortslice, ctxflow, goroutine-lifecycle)"
go run ./cmd/rpvet ./...

step "rpvet -fix -diff (the tree is a fixed point of the suggested fixes)"
go run ./cmd/rpvet -fix -diff ./...

step "go build"
go build ./...

step "go test -race"
go test -race ${GOTESTFLAGS:-} ./...

step "ok"
