#!/usr/bin/env bash
# smoke_shard.sh — end-to-end test of sharded scatter-gather mining: a
# local `rpmine -shards 3` run must print byte-identical patterns to the
# direct mine, and an rpserved coordinator scattering over two real peer
# servers must return the same /v1/mine response a single-box server does
# (modulo timing fields), with the per-peer shard counters visible in
# /metrics, the merged fleet trace downloadable from the coordinator's
# journal and valid per rptrace, and /v1/fleet/stats reaching every peer.
# Needs curl; run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# start_server <logfile> <args...> — launches rpserved, records its pid,
# and prints the address it reports.
start_server() {
    local log=$1; shift
    "$workdir/rpserved" "$@" -listen 127.0.0.1:0 >"$log" 2>&1 &
    local pid=$!
    pids+=("$pid")
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^rpserved: listening on //p' "$log")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$log" >&2; return 1; }
    echo "$addr"
}

echo "== build"
go build -o "$workdir/rpgen" ./cmd/rpgen
go build -o "$workdir/rpmine" ./cmd/rpmine
go build -o "$workdir/rpserved" ./cmd/rpserved
go build -o "$workdir/rptrace" ./cmd/rptrace

echo "== generate a small dataset"
"$workdir/rpgen" -dataset shop14 -scale 0.02 -out "$workdir/shop.tdb"

echo "== rpmine -shards 3 is byte-identical to the direct mine"
"$workdir/rpmine" -input "$workdir/shop.tdb" -per 60 -minps-pct 2 -minrec 1 >"$workdir/direct.txt"
"$workdir/rpmine" -input "$workdir/shop.tdb" -per 60 -minps-pct 2 -minrec 1 -shards 3 >"$workdir/sharded.txt"
diff "$workdir/direct.txt" "$workdir/sharded.txt" \
    || { echo "sharded rpmine output diverges from the direct mine"; exit 1; }
[ -s "$workdir/direct.txt" ] || { echo "direct mine found no patterns; smoke proves nothing"; exit 1; }

echo "== start two peers and a coordinator"
p1=$(start_server "$workdir/peer1.log" -db shop="$workdir/shop.tdb")
p2=$(start_server "$workdir/peer2.log" -db shop="$workdir/shop.tdb")
echo "   peers on $p1, $p2"
coord=$(start_server "$workdir/coord.log" -db shop="$workdir/shop.tdb" \
    -peers "http://$p1,http://$p2" -shards 3)
echo "   coordinator on $coord"

echo "== scattered /v1/mine matches the single-box response"
req='{"db":"shop","per":60,"minPSPercent":2,"minRec":1}'
# elapsedMS/miningMS are wall times and cached flips on repeats; everything
# else — count, patterns, intervals — must match byte for byte (writeJSON
# indents, so each field sits on its own line).
curl -sf "http://$coord/v1/mine" -d "$req" \
    | grep -vE '"(elapsedMS|miningMS|cached)":' >"$workdir/scattered.json"
curl -sf "http://$p1/v1/mine" -d "$req" \
    | grep -vE '"(elapsedMS|miningMS|cached)":' >"$workdir/singlebox.json"
diff "$workdir/scattered.json" "$workdir/singlebox.json" \
    || { echo "scattered response diverges from single-box"; exit 1; }
grep -q '"partial"' "$workdir/scattered.json" \
    && { echo "healthy scatter marked partial"; exit 1; }

echo "== per-peer shard counters in /metrics"
metrics=$(curl -sf "http://$coord/metrics")
for peer in "http://$p1" "http://$p2"; do
    grep -q "^rpserved_shard_peer_success_total{peer=\"$peer\"} " <<<"$metrics" \
        || { echo "metrics missing success counter for $peer:"; echo "$metrics" | grep shard_peer || true; exit 1; }
done
total=$(grep '^rpserved_shard_peer_success_total' <<<"$metrics" | awk '{s+=$2} END {print s}')
[ "$total" = "3" ] || { echo "peer success counters sum to $total, want 3"; exit 1; }
grep -q '^rpserved_shard_peer_phase_seconds{' <<<"$metrics" \
    || { echo "metrics missing the per-peer per-phase family"; exit 1; }

echo "== fleet trace: the scattered mine left one merged flight record"
id=$(curl -sf "http://$coord/debug/requests?format=json" \
    | grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$id" ] || { echo "coordinator journal has no request entries"; exit 1; }
curl -sf "http://$coord/debug/requests/trace?id=$id" >"$workdir/fleet.json"
"$workdir/rptrace" -by-lane "$workdir/fleet.json" \
    || { echo "merged fleet trace failed rptrace validation"; exit 1; }
grep -q '"peer http://' "$workdir/fleet.json" \
    || { echo "merged trace has no peer lanes"; exit 1; }

echo "== peer journals join on the coordinator's request id"
joined=0
for host in "$p1" "$p2"; do
    curl -sf "http://$host/debug/requests?format=json" | grep -q "\"id\": \"$id\"" \
        && joined=$((joined + 1))
done
[ "$joined" -ge 1 ] || { echo "no peer journalled shard tasks under id $id"; exit 1; }

echo "== /v1/fleet/stats fans out to both peers"
fleet=$(curl -sf "http://$coord/v1/fleet/stats")
for peer in "http://$p1" "http://$p2"; do
    grep -q "\"url\": \"$peer\"" <<<"$fleet" \
        || { echo "fleet stats missing peer $peer: $fleet"; exit 1; }
done
grep -q '"error"' <<<"$fleet" && { echo "fleet stats reported a peer error: $fleet"; exit 1; }
# A peer is not a coordinator: the endpoint 404s there.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$p1/v1/fleet/stats")
[ "$code" = "404" ] || { echo "peer answered /v1/fleet/stats with $code, want 404"; exit 1; }

echo "== peers recorded the shard requests"
peer_shards=0
for log in peer1 peer2; do
    s=$(curl -sf "http://$([ "$log" = peer1 ] && echo "$p1" || echo "$p2")/v1/stats" \
        | grep -o '"shardRequests": [0-9]*' | grep -o '[0-9]*$')
    peer_shards=$((peer_shards + s))
done
[ "$peer_shards" = "3" ] || { echo "peers saw $peer_shards shard requests, want 3"; exit 1; }

echo "== repeat scattered mine is a coordinator cache hit"
warm=$(curl -sf "http://$coord/v1/mine" -d "$req")
grep -q '"cached": true' <<<"$warm" || { echo "repeat scattered mine missed the cache: $warm"; exit 1; }

echo "== graceful shutdown"
for pid in "${pids[@]}"; do
    kill -TERM "$pid"
done
for pid in "${pids[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "server $pid did not exit after SIGTERM"; exit 1
    fi
done
pids=()

echo "== ok"
