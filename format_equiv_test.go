package rp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCrossFormatMiningEquivalence is the end-to-end guarantee behind
// "upload once, mine many": a database loaded from the text format, the v1
// binary format, the v2 mapped layout (buffered and memory-mapped alike)
// has the same fingerprint and produces byte-for-byte identical mining
// output. The mapped view mines directly over the file-backed sections, so
// this also proves the no-decode load path feeds the miner correctly.
func TestCrossFormatMiningEquivalence(t *testing.T) {
	// Canonicalize first: the text format stores no dictionary, so a text
	// round-trip re-interns items in timestamp order. Parsing the DB's own
	// text serialization is a fixed point, making every format's load
	// representation-identical, fingerprint included.
	var canon bytes.Buffer
	if err := WriteDB(&canon, FromEvents(paperEvents())); err != nil {
		t.Fatal(err)
	}
	base, err := ReadDB(bytes.NewReader(canon.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Per: 2, MinPS: 3, MinRec: 2}
	wantPatterns, err := Mine(base, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPatterns) == 0 {
		t.Fatal("paper example mined no patterns; test setup broken")
	}
	wantFP := base.Fingerprint()

	var text, v1, v2 bytes.Buffer
	if err := WriteDB(&text, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteDBBinary(&v1, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteDBMapped(&v2, base); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := map[string][]byte{"db.tdb": text.Bytes(), "db.rpdb": v1.Bytes(), "db.tsdbm": v2.Bytes()}
	for name, data := range paths {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	loads := map[string]func() (*DB, func(), error){
		"text/reader": func() (*DB, func(), error) {
			db, err := ReadDB(bytes.NewReader(text.Bytes()))
			return db, func() {}, err
		},
		"v1/reader": func() (*DB, func(), error) {
			db, err := ReadDB(bytes.NewReader(v1.Bytes()))
			return db, func() {}, err
		},
		"v2/reader": func() (*DB, func(), error) {
			db, err := ReadDB(bytes.NewReader(v2.Bytes()))
			return db, func() {}, err
		},
		"text/file": func() (*DB, func(), error) {
			db, err := ReadDBFile(filepath.Join(dir, "db.tdb"))
			return db, func() {}, err
		},
		"v2/mmap": func() (*DB, func(), error) {
			fh, err := OpenDBFile(filepath.Join(dir, "db.tsdbm"))
			if err != nil {
				return nil, nil, err
			}
			return fh.DB(), func() {
				if err := fh.Close(); err != nil {
					t.Errorf("closing mapped file: %v", err)
				}
			}, nil
		},
	}
	for name, load := range loads {
		t.Run(name, func(t *testing.T) {
			db, done, err := load()
			if err != nil {
				t.Fatal(err)
			}
			defer done()
			if fp := db.Fingerprint(); fp != wantFP {
				t.Fatalf("fingerprint %016x, want %016x", fp, wantFP)
			}
			patterns, err := Mine(db, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(patterns, wantPatterns) {
				t.Errorf("mining output diverged:\n got %s\nwant %s",
					renderPatterns(patterns), renderPatterns(wantPatterns))
			}
		})
	}
}

func renderPatterns(ps []Pattern) string {
	var buf bytes.Buffer
	for _, p := range ps {
		fmt.Fprintf(&buf, "%v sup=%d rec=%d %v; ", p.Items, p.Support, p.Recurrence, p.Intervals)
	}
	return buf.String()
}
