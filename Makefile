# Repository targets. `make check` is the gate CI runs.

GO ?= go

.PHONY: build test check bench fmt vet rpvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: gofmt, go vet, rpvet, build, race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

rpvet:
	$(GO) run ./cmd/rpvet ./...
