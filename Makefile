# Repository targets. `make check` is the gate CI runs.

GO ?= go
SHELL := /bin/bash

.PHONY: help build test check bench bench-core bench-ingest bench-diff fmt vet rpvet vet-fix-check vet-sarif

help:
	@echo "Targets:"
	@echo "  build          go build ./..."
	@echo "  test           go test ./..."
	@echo "  check          full gate: gofmt, go vet, rpvet, build, race tests (CI runs this)"
	@echo "  bench          end-to-end table benchmarks (root package)"
	@echo "  bench-core     core hot-path benchmarks; updates BENCH_core.json via cmd/benchfmt"
	@echo "  bench-ingest   ingest-path benchmarks (parallel text parse, v1, v2 mapped); updates BENCH_ingest.json"
	@echo "  bench-diff     fresh core-benchmark run vs BENCH_core.json, Mann-Whitney per benchmark (exit 1 on regression)"
	@echo "  fmt            gofmt -w ."
	@echo "  vet            go vet ./..."
	@echo "  rpvet          custom static-analysis passes"
	@echo "  vet-fix-check  assert rpvet -fix -diff is empty (every suggested fix is applied)"
	@echo "  vet-sarif      write rpvet's findings to rpvet.sarif for code scanning"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: gofmt, go vet, rpvet, build, race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Tracked baseline for the internal/core hot path: run the micro-benchmarks
# and refresh the committed JSON report.
bench-core:
	set -o pipefail; $(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/core/ | $(GO) run ./cmd/benchfmt -out BENCH_core.json

# Tracked baseline for the ingest path: sequential vs chunked-parallel text
# parsing at several worker counts, plus the v1 decode and v2 mapped-view
# loads, over the shared 16MB corpus.
bench-ingest:
	set -o pipefail; $(GO) test -run '^$$' -bench Ingest -benchmem -count 3 ./internal/tsdb/ | $(GO) run ./cmd/benchfmt -out BENCH_ingest.json

# Statistical comparison of a fresh core-benchmark run against the tracked
# baseline (Mann-Whitney per benchmark; see cmd/rpbenchdiff). Exits 1 when
# a benchmark regressed significantly. BENCH_COUNT samples per benchmark.
BENCH_COUNT ?= 5
bench-diff:
	set -o pipefail; \
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/core/ > /tmp/rpbenchdiff-new.txt; \
	$(GO) run ./cmd/rpbenchdiff BENCH_core.json /tmp/rpbenchdiff-new.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

rpvet:
	$(GO) run ./cmd/rpvet ./...

# Fails when any pass still carries an unapplied suggested fix: the tree
# must be a fixed point of `rpvet -fix`.
vet-fix-check:
	$(GO) run ./cmd/rpvet -fix -diff ./...

# Writes the findings as SARIF 2.1.0 for GitHub code scanning; always
# produces the file, even when there are findings (CI uploads it and then
# fails on the gate instead).
vet-sarif:
	$(GO) run ./cmd/rpvet -format=sarif ./... > rpvet.sarif || true
	@echo "wrote rpvet.sarif"
