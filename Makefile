# Repository targets. `make check` is the gate CI runs.

GO ?= go
SHELL := /bin/bash

.PHONY: help build test check bench bench-core fmt vet rpvet

help:
	@echo "Targets:"
	@echo "  build       go build ./..."
	@echo "  test        go test ./..."
	@echo "  check       full gate: gofmt, go vet, rpvet, build, race tests (CI runs this)"
	@echo "  bench       end-to-end table benchmarks (root package)"
	@echo "  bench-core  core hot-path benchmarks; updates BENCH_core.json via cmd/benchfmt"
	@echo "  fmt         gofmt -w ."
	@echo "  vet         go vet ./..."
	@echo "  rpvet       custom static-analysis passes"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: gofmt, go vet, rpvet, build, race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Tracked baseline for the internal/core hot path: run the micro-benchmarks
# and refresh the committed JSON report.
bench-core:
	set -o pipefail; $(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/core/ | $(GO) run ./cmd/benchfmt -out BENCH_core.json

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

rpvet:
	$(GO) run ./cmd/rpvet ./...
