package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shop.tdb")
	var out bytes.Buffer
	err := run([]string{"-dataset", "shop14", "-scale", "0.02", "-seed", "5", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := tsdb.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("generated file has no transactions")
	}
	if err := db.Validate(); err != nil {
		t.Errorf("generated DB invalid: %v", err)
	}
}

func TestGenerateToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "twitter", "-scale", "0.01", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\t") {
		t.Error("no transactions written to stdout")
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestGenerateBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shop.rpdb")
	var out bytes.Buffer
	err := run([]string{"-dataset", "shop14", "-scale", "0.02", "-seed", "5",
		"-binary", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := tsdb.ReadAny(f)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("binary file has no transactions")
	}
}
