// Command rpgen generates the evaluation datasets of the paper — the
// Quest-style synthetic T10I4D100K, the Shop-14 clickstream simulation,
// and the Twitter hashtag-stream simulation — in any on-disk format: text
// (default), compact v1 binary, or the mmap-able v2 layout.
//
// Example:
//
//	rpgen -dataset twitter -scale 0.1 -seed 7 -out twitter.tdb
//	rpgen -dataset shop14 -format mapped -out shop14.tsdbm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rpgen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "dataset to generate: t10i4d100k, shop14 or twitter")
		scale   = fs.Float64("scale", 1.0, "size relative to the paper's dataset")
		seed    = fs.Uint64("seed", 1, "generator seed")
		out     = fs.String("out", "-", "output file ('-' for stdout)")
		events  = fs.Bool("events", false, "also print the planted burst events (twitter only) to stderr")
		binary  = fs.Bool("binary", false, "write the compact binary format instead of text (same as -format binary)")
		format  = fs.String("format", "", "output format: text (default), binary (compact v1) or mapped (mmap-able v2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := bench.Load(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	if *events {
		for _, e := range d.Events {
			fmt.Fprintf(os.Stderr, "event %v windows=%v rate=%.2f\n", e.Tags, e.Windows, e.Rate)
		}
	}
	var w io.Writer = stdout
	// finish flushes and closes the output file; on the write path its
	// error is the caller's only evidence of a short write, so it is
	// checked explicitly rather than dropped in a defer.
	finish := func() error { return nil }
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close() // backstop for early returns; finish() closes and checks on success
		bw := bufio.NewWriter(f)
		w = bw
		finish = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	write := tsdb.Write
	if *binary {
		write = tsdb.WriteBinary
	}
	switch *format {
	case "":
	case "text":
		write = tsdb.Write
	case "binary":
		write = tsdb.WriteBinary
	case "mapped":
		write = tsdb.WriteMapped
	default:
		return fmt.Errorf("unknown format %q (want text, binary or mapped)", *format)
	}
	if err := write(w, d.DB); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "rpgen:", d.Name, tsdb.ComputeStats(d.DB))
	return nil
}
