// Command benchfmt turns `go test -bench` text output into a stable JSON
// benchmark report while passing the text through unchanged, so one pipeline
// both shows the run and records it:
//
//	go test -run '^$' -bench . -benchmem ./internal/core/ | benchfmt -out BENCH_core.json
//
// The report captures the run context lines (goos, goarch, pkg, cpu) and one
// record per benchmark result with the iteration count and every reported
// metric (ns/op, B/op, allocs/op, custom b.ReportMetric units). The JSON is
// byte-deterministic for identical input: records keep input order and
// encoding/json sorts metric keys, so committed reports diff cleanly.
//
// Rows that carry the phase tracer's "<phase>-ns/op" metrics (the traced
// core benchmarks, rpbench -json) additionally get a phase-attribution
// summary appended after the tee, one line per row with each phase's share
// of ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/cliio"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

// Benchmark and Report are the shapes shared with internal/bench (rpbench
// -json writes the same report format this tool does).
type (
	Benchmark = bench.Benchmark
	Report    = bench.Report
)

func run(args []string, src io.Reader, dst io.Writer) error {
	out := cliio.NewWriter(dst)
	var outFile string
	switch {
	case len(args) == 2 && args[0] == "-out":
		outFile = args[1]
	case len(args) == 0:
	default:
		return fmt.Errorf("usage: benchfmt [-out report.json] < bench-output")
	}

	report := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		if b, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
			continue
		}
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") && len(report.Benchmarks) == 0 {
			report.Context[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Rows with phase metrics (traced benchmarks) get their attribution
	// rendered after the tee; untraced runs add nothing.
	fmt.Fprint(out, bench.FormatPhaseMetrics(report.Benchmarks))
	if err := out.Err(); err != nil {
		return err
	}
	if outFile == "" {
		return nil
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input; not writing %s", outFile)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outFile, append(data, '\n'), 0o644)
}

// parseBenchLine parses "BenchmarkName-8   123   456 ns/op   7 B/op ..." into
// a record; reports ok=false for any other line. The parser lives in
// internal/bench so cmd/rpbenchdiff reads the same lines.
func parseBenchLine(line string) (Benchmark, bool) {
	return bench.ParseBenchLine(line)
}
