package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/recurpat/rp/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBuildRPTree          	     100	  14472793 ns/op	  492360 B/op	    1898 allocs/op
BenchmarkMineEndToEnd-8       	      25	  43322959 ns/op	     230.0 patterns	 3944544 B/op	   24735 allocs/op
PASS
ok  	github.com/recurpat/rp/internal/core	0.238s
`

func TestBenchfmtParsesAndTees(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "report.json")
	var stdout bytes.Buffer
	if err := run([]string{"-out", outFile}, strings.NewReader(sample), &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != sample {
		t.Errorf("stdout not an exact tee of the input:\n%s", stdout.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Context["goos"] != "linux" || rep.Context["cpu"] == "" {
		t.Errorf("context not captured: %+v", rep.Context)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkBuildRPTree" || b0.Iterations != 100 ||
		b0.Metrics["ns/op"] != 14472793 || b0.Metrics["allocs/op"] != 1898 {
		t.Errorf("first record wrong: %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkMineEndToEnd-8" || b1.Metrics["patterns"] != 230 {
		t.Errorf("custom metric not captured: %+v", b1)
	}
}

func TestBenchfmtRejectsEmptyRuns(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-out", outFile}, strings.NewReader("PASS\nok x 1s\n"), new(bytes.Buffer))
	if err == nil {
		t.Fatal("want an error when no benchmark lines are present")
	}
	if _, statErr := os.Stat(outFile); !os.IsNotExist(statErr) {
		t.Error("report file created despite empty run")
	}
}

func TestBenchfmtWithoutOutIsPureTee(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != sample {
		t.Error("pass-through output differs from input")
	}
}

func TestBenchfmtRendersPhaseAttribution(t *testing.T) {
	traced := "BenchmarkMineEndToEndTraced-8 \t 10\t 50000000 ns/op\t 10000000 scan-ns/op\t 35000000 mine-ns/op\t 120.0 mine-count/op\n"
	var stdout bytes.Buffer
	if err := run(nil, strings.NewReader(traced), &stdout); err != nil {
		t.Fatal(err)
	}
	s := stdout.String()
	if !strings.Contains(s, "phase attribution (share of ns/op):") {
		t.Fatalf("attribution header missing:\n%s", s)
	}
	for _, want := range []string{"BenchmarkMineEndToEndTraced-8", "scan 20.0%", "mine 70.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("attribution missing %q:\n%s", want, s)
		}
	}
}
