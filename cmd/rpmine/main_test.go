package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp"
)

const paperInput = `1	a b g
2	a c d
3	a b e f
4	a b c d
5	c d e f g
6	e f g
7	a b c g
9	c d
10	c d e f
11	a b e f
12	a b c d e f g
14	a b g
`

func writeInput(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "paper.tdb")
	if err := os.WriteFile(path, []byte(paperInput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMinePaperFile(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d patterns, want 8:\n%s", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "{a,b} [sup=7 rec=2") {
		t.Errorf("missing {a,b} row:\n%s", out.String())
	}
}

func TestMineTSVAndStats(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-tsv", "-stats"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# db:") || !strings.Contains(s, "# search:") {
		t.Errorf("stats header missing:\n%s", s)
	}
	if !strings.Contains(s, "a b\t7\t2\t1:4:3,11:14:3") {
		t.Errorf("TSV row missing:\n%s", s)
	}
}

func TestMinePercentThreshold(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	// 25% of 12 transactions = 3, same result as -minps 3.
	err := run([]string{"-input", path, "-per", "2", "-minps-pct", "25", "-minrec", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 8 {
		t.Fatalf("got %d patterns, want 8", got)
	}
}

func TestMineErrors(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	if err := run([]string{"-input", "/does/not/exist", "-per", "2", "-minps", "3"}, &out, io.Discard); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-input", path, "-per", "0", "-minps", "3"}, &out, io.Discard); err == nil {
		t.Error("per=0 must fail")
	}
	if err := run([]string{"-badflag"}, &out, io.Discard); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestMineJSONAndCSVFormats(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-format", "json"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := rp.ReadPatternsJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 8 {
		t.Fatalf("JSON: got %d patterns, want 8", len(patterns))
	}

	out.Reset()
	err = run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-format", "csv"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err = rp.ReadPatternsCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 8 {
		t.Fatalf("CSV: got %d patterns, want 8", len(patterns))
	}

	out.Reset()
	if err := run([]string{"-input", path, "-per", "2", "-minps", "3",
		"-format", "nonsense"}, &out, io.Discard); err == nil {
		t.Error("unknown format must fail")
	}
}

func TestMineTraceOut(t *testing.T) {
	path := writeInput(t)
	tracePath := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-parallel", "2", "-trace-out", tracePath}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Recording must not change the mined output.
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 8 {
		t.Fatalf("got %d patterns, want 8:\n%s", got, out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := rp.ValidateTraceEvents(f)
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if spans < 4 {
		t.Errorf("trace has %d spans, want at least scan/tree-build/finalize/total", spans)
	}

	if err := run([]string{"-input", path, "-per", "2", "-minps", "3",
		"-trace-out", tracePath, "-trace-spans", "-1"}, &out, io.Discard); err == nil {
		t.Error("negative -trace-spans must fail")
	}
}

func TestMinePhasesAndVerbose(t *testing.T) {
	path := writeInput(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-phases", "-v"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern output on stdout is unchanged by the observability flags.
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 8 {
		t.Fatalf("got %d patterns, want 8:\n%s", got, out.String())
	}
	s := errOut.String()
	// -v: structured progress lines.
	for _, want := range []string{"msg=\"database loaded\"", "transactions=12",
		"msg=\"mining done\"", "patterns=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("verbose log missing %q:\n%s", want, s)
		}
	}
	// -phases: the phase table with every top-level phase and the coverage
	// footer.
	for _, want := range []string{"phase", "scan", "tree-build", "mine",
		"finalize", "ts-merge", "erec-prune", "phase coverage, 1 run(s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("phase table missing %q:\n%s", want, s)
		}
	}
}
