package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp"
)

const paperInput = `1	a b g
2	a c d
3	a b e f
4	a b c d
5	c d e f g
6	e f g
7	a b c g
9	c d
10	c d e f
11	a b e f
12	a b c d e f g
14	a b g
`

func writeInput(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "paper.tdb")
	if err := os.WriteFile(path, []byte(paperInput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMinePaperFile(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d patterns, want 8:\n%s", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "{a,b} [sup=7 rec=2") {
		t.Errorf("missing {a,b} row:\n%s", out.String())
	}
}

func TestMineTSVAndStats(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-tsv", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# db:") || !strings.Contains(s, "# search:") {
		t.Errorf("stats header missing:\n%s", s)
	}
	if !strings.Contains(s, "a b\t7\t2\t1:4:3,11:14:3") {
		t.Errorf("TSV row missing:\n%s", s)
	}
}

func TestMinePercentThreshold(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	// 25% of 12 transactions = 3, same result as -minps 3.
	err := run([]string{"-input", path, "-per", "2", "-minps-pct", "25", "-minrec", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 8 {
		t.Fatalf("got %d patterns, want 8", got)
	}
}

func TestMineErrors(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	if err := run([]string{"-input", "/does/not/exist", "-per", "2", "-minps", "3"}, &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-input", path, "-per", "0", "-minps", "3"}, &out); err == nil {
		t.Error("per=0 must fail")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestMineJSONAndCSVFormats(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := rp.ReadPatternsJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 8 {
		t.Fatalf("JSON: got %d patterns, want 8", len(patterns))
	}

	out.Reset()
	err = run([]string{"-input", path, "-per", "2", "-minps", "3", "-minrec", "2",
		"-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err = rp.ReadPatternsCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 8 {
		t.Fatalf("CSV: got %d patterns, want 8", len(patterns))
	}

	out.Reset()
	if err := run([]string{"-input", path, "-per", "2", "-minps", "3",
		"-format", "nonsense"}, &out); err == nil {
		t.Error("unknown format must fail")
	}
}
