// Command rpmine discovers recurring patterns in a time-based transactional
// database file.
//
// The input format is one transaction per line: "timestamp<TAB>item item
// ...". Thresholds follow the paper: -per bounds the inter-arrival time of
// a periodic appearance, -minps is the minimum periodic support of an
// interesting interval (absolute count, or a percentage of |TDB| with
// -minps-pct), and -minrec is the minimum number of interesting intervals.
//
// Example:
//
//	rpgen -dataset shop14 -out shop.tdb
//	rpmine -input shop.tdb -per 720 -minps-pct 0.2 -minrec 2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpmine:", err)
		os.Exit(1)
	}
}

func run(args []string, dst, errDst io.Writer) error {
	// Latch write errors (broken pipe, full disk) and report them once at
	// the end instead of checking every print.
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpmine", flag.ContinueOnError)
	var (
		input      = fs.String("input", "-", "transaction file to mine ('-' for stdin)")
		per        = fs.Int64("per", 0, "period threshold (required, timestamp units)")
		minPS      = fs.Int("minps", 0, "minimum periodic support (absolute)")
		minPSPct   = fs.Float64("minps-pct", 0, "minimum periodic support as a percentage of |TDB| (alternative to -minps)")
		minRec     = fs.Int("minrec", 1, "minimum recurrence")
		maxLen     = fs.Int("maxlen", 0, "maximum pattern length (0 = unlimited)")
		parallel   = fs.Int("parallel", 0, "mine top-level items with this many goroutines (0/1 = sequential)")
		shards     = fs.Int("shards", 0, "mine as this many scatter-gather shard tasks (0/1 = off; output is identical)")
		stats      = fs.Bool("stats", false, "print database and search statistics")
		tsv        = fs.Bool("tsv", false, "tab-separated output instead of the pattern notation")
		format     = fs.String("format", "", "output format: text (default), tsv, json or csv")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		phases     = fs.Bool("phases", false, "print a per-phase time and work breakdown to stderr after mining")
		traceOut   = fs.String("trace-out", "", "record the run and write its span timeline as Chrome trace-event JSON to this file (open in Perfetto)")
		traceSpans = fs.Int("trace-spans", 0, "span retention cap for -trace-out (0 = default; past it only aggregates are kept)")
		verbose    = fs.Bool("v", false, "structured progress logs on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = obs.NewLogger(errDst, slog.LevelInfo)
	}
	o := rp.Options{
		Per:          *per,
		MinPS:        *minPS,
		MinRec:       *minRec,
		MaxLen:       *maxLen,
		Parallelism:  *parallel,
		CollectStats: *stats,
	}
	if *phases {
		o.Trace = rp.NewTrace()
	}
	var tl *rp.Timeline
	if *traceOut != "" {
		if *traceSpans < 0 {
			return fmt.Errorf("-trace-spans must be >= 0, got %d", *traceSpans)
		}
		// Recording needs a trace to hang off; -trace-out alone implies one.
		if o.Trace == nil {
			o.Trace = rp.NewTrace()
		}
		tl = rp.NewTimeline(*traceSpans)
		o.Trace.AttachTimeline(tl)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	err := cliio.Profile(*cpuProf, *memProf, func() error {
		return mine(*input, *minPSPct, *shards, *stats, *tsv, *format, o, out, logger)
	})
	if err == nil && tl != nil {
		if werr := writeTrace(*traceOut, *input, tl); werr != nil {
			return werr
		}
		logger.Info("trace written", "file", *traceOut, "spans", len(tl.Snapshot().Spans))
	}
	if err == nil && *phases {
		// The phase table goes to stderr so -format json/csv output on
		// stdout stays machine-readable with -phases on.
		if _, werr := io.WriteString(errDst, o.Trace.Report().String()); werr != nil {
			return werr
		}
	}
	return err
}

// writeTrace exports the recorded timeline as Chrome trace-event JSON.
func writeTrace(path, input string, tl *rp.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rp.WriteTraceEvents(f, "rpmine "+input, tl.Snapshot())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// mine loads the database, runs the miner and renders the result; split from
// run so the profiling wrapper brackets exactly the load-mine-print work.
func mine(input string, minPSPct float64, shards int, stats, tsv bool, format string, o rp.Options, out *cliio.Writer, logger *slog.Logger) error {
	loadStart := obs.Now()
	var db *rp.DB
	if input == "-" {
		var err error
		db, err = rp.ReadDB(os.Stdin) // auto-detects text, v1 binary, v2 mapped
		if err != nil {
			return err
		}
	} else {
		// Files go through OpenDBFile: text parses in parallel, v2 mapped
		// files open as memory-mapped views with no decode loop.
		fh, err := rp.OpenDBFile(input)
		if err != nil {
			return err
		}
		defer fh.Close()
		db = fh.DB()
	}
	logger.Info("database loaded", "input", input, "transactions", db.Len(),
		"loadMS", float64(obs.Since(loadStart))/1e6)
	if o.MinPS == 0 && minPSPct > 0 {
		o.MinPS = rp.MinPSFromPercent(db, minPSPct)
	}
	// Validate here, once the percentage form is resolved, so bad flags
	// fail with the same Options.Validate text every entry point reports.
	if err := o.Validate(); err != nil {
		return err
	}
	if stats {
		fmt.Fprintln(out, "# db:", rp.ComputeStats(db))
		fmt.Fprintf(out, "# thresholds: per=%d minPS=%d minRec=%d\n", o.Per, o.MinPS, o.MinRec)
	}
	mineStart := obs.Now()
	var res *rp.Result
	var err error
	if shards > 1 {
		// Scatter-gather over local shard tasks: the same planner, executor
		// and reducer the -peers serving mode uses, minus the network. The
		// pattern set is byte-identical to the direct mine.
		c := &shard.Coordinator{Count: shards, Exec: shard.Local{}}
		sres, serr := c.Mine(context.Background(), db, o)
		if serr != nil {
			return serr
		}
		res = sres.Result
	} else {
		res, err = rp.MineRaw(db, o)
		if err != nil {
			return err
		}
	}
	logger.Info("mining done", "patterns", len(res.Patterns),
		"per", o.Per, "minPS", o.MinPS, "minRec", o.MinRec,
		"mineMS", float64(obs.Since(mineStart))/1e6)
	if stats {
		fmt.Fprintf(out, "# search: candidates=%d examined=%d pruned=%d treeNodes=%d depth=%d\n",
			res.Stats.CandidateItems, res.Stats.PatternsExamined, res.Stats.PatternsPruned,
			res.Stats.TreeNodes, res.Stats.MaxDepth)
		fmt.Fprintf(out, "# patterns: %d (max length %d)\n", len(res.Patterns), res.MaxLen())
	}

	mode := format
	if mode == "" {
		mode = "text"
		if tsv {
			mode = "tsv"
		}
	}
	switch mode {
	case "json", "csv":
		named := make([]rp.Pattern, len(res.Patterns))
		for i, p := range res.Patterns {
			named[i] = rp.Pattern{
				Items:      db.PatternNames(p.Items),
				Support:    p.Support,
				Recurrence: p.Recurrence,
				Intervals:  p.Intervals,
			}
		}
		if mode == "json" {
			return rp.WritePatternsJSON(out, named)
		}
		return rp.WritePatternsCSV(out, named)
	case "tsv":
		for _, p := range res.Patterns {
			names := db.PatternNames(p.Items)
			ivs := make([]string, len(p.Intervals))
			for i, iv := range p.Intervals {
				ivs[i] = fmt.Sprintf("%d:%d:%d", iv.Start, iv.End, iv.PS)
			}
			fmt.Fprintf(out, "%s\t%d\t%d\t%s\n",
				strings.Join(names, " "), p.Support, p.Recurrence, strings.Join(ivs, ","))
		}
	case "text":
		for _, p := range res.Patterns {
			fmt.Fprintln(out, p.Format(db.Dict))
		}
	default:
		return fmt.Errorf("unknown format %q (want text, tsv, json or csv)", mode)
	}
	return out.Err()
}
