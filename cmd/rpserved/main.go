// Command rpserved serves RP-growth mining over HTTP: it loads zero or
// more databases at startup and answers mining requests against them (or
// against uploaded datasets) until shut down, with admission control,
// result caching and metrics (see internal/serve and the README's Serving
// section).
//
// Usage:
//
//	rpserved -db shop=shop.tdb [-db web=web.tdb] [flags]
//	rpserved -dataset shop14:0.05:1 -listen 127.0.0.1:0
//	rpserved -listen 127.0.0.1:0   # registry-only: mine what clients upload
//
// Databases come from files (-db name=path, any on-disk format), are
// generated in-process from the paper's dataset simulators
// (-dataset name[:scale[:seed]]), or arrive over HTTP through the dataset
// registry — upload once, mine many times by fingerprint. The HTTP surface:
//
//	POST /v1/mine    {"db":"shop","per":360,"minPS":20,"minRec":2} → patterns
//	                 or {"dataset":"<fp>",...} to mine an uploaded dataset
//	POST /v1/shard/mine   one shard task of a scatter-gather mine,
//	                      addressed by content fingerprint; what a
//	                      coordinator (-peers) sends its peers
//	POST /v1/datasets     upload a database body (any format); it is parsed
//	                      in parallel, registered under its content
//	                      fingerprint, and the fingerprint returned.
//	                      Bounded by -max-upload; the registry evicts least
//	                      recently mined datasets past -registry-bytes /
//	                      -registry-entries
//	GET    /v1/datasets      list registered datasets (most recently used first)
//	DELETE /v1/datasets/{fp} evict one dataset
//	GET  /v1/stats   serving counters, cache state, runtime health,
//	                 database inventory
//	GET  /v1/fleet/stats  (coordinators only) this server's stats plus
//	                      every peer's /v1/stats, fetched in parallel;
//	                      unreachable peers degrade to an error string
//	GET  /metrics    Prometheus text exposition (counters, mining and
//	                 per-phase time histograms, serving and Go runtime
//	                 health gauges)
//	GET  /healthz    liveness; fails once draining begins
//	GET  /debug/requests        journal of recent and slowest requests with
//	                            per-phase breakdowns (HTML; ?format=json)
//	GET  /debug/requests/trace  one request's recorded span timeline as
//	                            Chrome trace-event JSON (?id=<request id>;
//	                            open in Perfetto, or check with rptrace)
//	GET  /debug/profiles        ring of periodic CPU/heap profile captures
//	                            (HTML; ?format=json), taken every
//	                            -profile-interval; /debug/profiles/{id}
//	                            downloads one capture for `go tool pprof`.
//	                            Mining samples carry pprof labels
//	                            (request_id, dataset_fp, phase), so a capture
//	                            attributes CPU to the requests it overlapped
//	GET  /debug/vars expvar, including the rpserved stats payload
//	GET  /debug/pprof/...  net/http/pprof, only with -pprof
//
// Every /v1/mine request emits one structured access-log line (log/slog,
// logfmt) on stderr with a unique request id, the database fingerprint, an
// options digest, the outcome (ok, cache-hit, shed, cancelled, ...), queue
// wait and mine time. Request bodies beyond -max-body are rejected with 413.
//
// With -peers, this server becomes a scatter-gather coordinator: each
// executed mine splits into -shards tasks POSTed to the peers'
// /v1/shard/mine endpoints (consistent-hash routed, retried with backoff,
// optionally hedged; see -shard-*) and the merged result is byte-identical
// to a single-box mine. Peers must serve the same database bytes — tasks
// pin the content fingerprint. Shard RPCs carry the coordinator's request
// id (X-Request-Id and the requestID body field), so every server's
// /debug/requests journal joins on it, and traced mines collect each
// peer's span timeline into one merged, clock-aligned flight record —
// the coordinator's /debug/requests/trace renders per-peer Perfetto
// lanes, and peer-reported phase times surface as
// rpserved_shard_peer_phase_seconds in /metrics.
//
// On SIGINT/SIGTERM the server stops accepting mines, drains the in-flight
// ones (bounded by -drain-timeout) and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/serve"
	"github.com/recurpat/rp/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpserved:", err)
		os.Exit(1)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, logDst io.Writer) error {
	logw := cliio.NewWriter(logDst)
	fs := flag.NewFlagSet("rpserved", flag.ContinueOnError)
	var dbSpecs, datasetSpecs multiFlag
	fs.Var(&dbSpecs, "db", "serve a database file as name=path (repeatable)")
	fs.Var(&datasetSpecs, "dataset", "serve a generated dataset as name[:scale[:seed]] (repeatable)")
	var peerSpecs multiFlag
	fs.Var(&peerSpecs, "peers", "scatter mines over these rpserved peer URLs (repeatable or comma-separated); this server becomes a coordinator")
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "address to listen on (:0 picks a free port)")
		maxConc      = fs.Int("max-concurrent", 0, "max simultaneous mines (0 = GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "max queued mine requests (0 = 4x max-concurrent, <0 = none)")
		queueTimeout = fs.Duration("queue-timeout", 0, "max wait for a mining slot (0 = 1s, <0 = unbounded)")
		mineTimeout  = fs.Duration("mine-timeout", 0, "server-side limit per mining run (0 = none)")
		cacheSize    = fs.Int("cache-size", 0, "result cache entries (0 = 64, <0 = disabled)")
		maxPar       = fs.Int("max-parallelism", 0, "cap on per-request parallelism (0 = GOMAXPROCS)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight mines")
		maxBody      = fs.Int64("max-body", 0, "request body size limit in bytes (0 = 1 MiB, <0 = unlimited)")
		maxUpload    = fs.Int64("max-upload", 0, "dataset upload size limit in bytes (0 = 64 MiB, <0 = unlimited)")
		regBytes     = fs.Int64("registry-bytes", 0, "dataset registry memory budget in bytes (0 = 256 MiB, <0 = unbounded)")
		regEntries   = fs.Int("registry-entries", 0, "dataset registry entry cap (0 = 64, <0 = unbounded)")
		spillDir     = fs.String("spill-dir", "", "directory for upload spill files (default: the system temp dir)")
		journalSize  = fs.Int("journal-size", 0, "request journal entries behind /debug/requests (0 = 64, <0 = disabled)")
		slowThresh   = fs.Duration("slow-threshold", 0, "elapsed time that puts a request in the journal's slow bucket (0 = 500ms, <0 = none)")
		traceSpans   = fs.Int("trace-spans", 0, "span retention cap per recorded mine (0 = default, <0 = no timelines)")
		profInterval = fs.Duration("profile-interval", time.Minute, "continuous-profiling capture interval behind /debug/profiles (0 = disabled)")
		profRetain   = fs.Int("profile-retain", 0, "profile captures retained in the ring (0 = 16)")
		profDir      = fs.String("profile-dir", "", "also spill profile captures to this directory (default: memory only)")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		quiet        = fs.Bool("quiet", false, "suppress the per-request access log")
		shards       = fs.Int("shards", 0, "shard tasks per mine in -peers mode (0 = one per peer)")
		shardTimeout = fs.Duration("shard-timeout", 0, "per-shard-request timeout in -peers mode (0 = 30s)")
		shardRetries = fs.Int("shard-retries", 0, "retries per failed shard task (0 = 2, <0 = none)")
		shardBackoff = fs.Duration("shard-backoff", 0, "initial retry backoff, doubling per retry (0 = 100ms)")
		shardHedge   = fs.Duration("shard-hedge", 0, "hedge a duplicate shard request after this delay (0 = off)")
		shardPolicy  = fs.String("shard-policy", "", "partial-failure policy in -peers mode: fail-fast (default) or best-effort")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q (databases are given with -db/-dataset)", fs.Args())
	}

	dbs, err := loadDatabases(dbSpecs, datasetSpecs)
	if err != nil {
		return err
	}
	logger := obs.NopLogger()
	if !*quiet {
		logger = obs.NewLogger(logDst, slog.LevelInfo)
	}
	srv, err := serve.NewServer(serve.Config{
		MaxConcurrent:      *maxConc,
		MaxQueue:           *maxQueue,
		QueueTimeout:       *queueTimeout,
		MineTimeout:        *mineTimeout,
		CacheSize:          *cacheSize,
		MaxParallelism:     *maxPar,
		MaxBody:            *maxBody,
		MaxUpload:          *maxUpload,
		RegistryMaxBytes:   *regBytes,
		RegistryMaxEntries: *regEntries,
		SpillDir:           *spillDir,
		JournalSize:        *journalSize,
		SlowThreshold:      *slowThresh,
		TimelineSpans:      *traceSpans,
		ProfileInterval:    *profInterval,
		ProfileRetain:      *profRetain,
		ProfileDir:         *profDir,
		Logger:             logger,
		Pprof:              *pprofOn,
		Peers:              splitPeers(peerSpecs),
		Shards:             *shards,
		ShardTimeout:       *shardTimeout,
		ShardRetries:       *shardRetries,
		ShardBackoff:       *shardBackoff,
		ShardHedge:         *shardHedge,
		ShardPolicy:        *shardPolicy,
	}, dbs)
	if err != nil {
		return err
	}
	srv.PublishExpvar()
	for _, name := range sortedNames(dbs) {
		db := dbs[name]
		fmt.Fprintf(logw, "rpserved: serving %q: %d transactions, fingerprint %016x\n",
			name, db.Len(), db.Fingerprint())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "rpserved: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	fmt.Fprintln(logw, "rpserved: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(logw, "rpserved: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close() // stop the profile recorder after the last request is done
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(logw, "rpserved: stopped")
	return logw.Err()
}

// splitPeers flattens repeatable -peers values, each possibly
// comma-separated, into one URL list.
func splitPeers(specs []string) []string {
	var peers []string
	for _, spec := range specs {
		for _, p := range strings.Split(spec, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	return peers
}

// loadDatabases assembles the served name → DB map from file and dataset
// specs, rejecting duplicate names across both kinds.
func loadDatabases(dbSpecs, datasetSpecs []string) (map[string]*tsdb.DB, error) {
	dbs := make(map[string]*tsdb.DB, len(dbSpecs)+len(datasetSpecs))
	for _, spec := range dbSpecs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("-db %q: want name=path", spec)
		}
		if _, dup := dbs[name]; dup {
			return nil, fmt.Errorf("duplicate database name %q", name)
		}
		db, err := readDBFile(path)
		if err != nil {
			return nil, fmt.Errorf("-db %s: %w", spec, err)
		}
		dbs[name] = db
	}
	for _, spec := range datasetSpecs {
		name, scale, seed, err := parseDatasetSpec(spec)
		if err != nil {
			return nil, err
		}
		if _, dup := dbs[name]; dup {
			return nil, fmt.Errorf("duplicate database name %q", name)
		}
		d, err := bench.Load(name, scale, seed)
		if err != nil {
			return nil, err
		}
		dbs[name] = d.DB
	}
	return dbs, nil
}

// readDBFile loads any on-disk format: text parses through the parallel
// ingest path, v2 mapped files build their view without a per-item decode
// loop. The database is heap-backed (no mmap lifetime to manage).
func readDBFile(path string) (*tsdb.DB, error) {
	return tsdb.ReadFile(path)
}

// parseDatasetSpec splits "name[:scale[:seed]]", defaulting to the paper's
// full scale and seed 1.
func parseDatasetSpec(spec string) (name string, scale float64, seed uint64, err error) {
	parts := strings.Split(spec, ":")
	name, scale, seed = parts[0], 1, 1
	if name == "" || len(parts) > 3 {
		return "", 0, 0, fmt.Errorf("-dataset %q: want name[:scale[:seed]]", spec)
	}
	if len(parts) > 1 {
		scale, err = strconv.ParseFloat(parts[1], 64)
		if err != nil || scale <= 0 {
			return "", 0, 0, fmt.Errorf("-dataset %q: bad scale %q", spec, parts[1])
		}
	}
	if len(parts) > 2 {
		seed, err = strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return "", 0, 0, fmt.Errorf("-dataset %q: bad seed %q", spec, parts[2])
		}
	}
	return name, scale, seed, nil
}

func sortedNames(dbs map[string]*tsdb.DB) []string {
	names := make([]string, 0, len(dbs))
	for name := range dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
