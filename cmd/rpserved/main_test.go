package main

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/serve"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestParseDatasetSpec(t *testing.T) {
	cases := []struct {
		spec  string
		name  string
		scale float64
		seed  uint64
		ok    bool
	}{
		{"shop14", "shop14", 1, 1, true},
		{"shop14:0.05", "shop14", 0.05, 1, true},
		{"twitter:0.5:7", "twitter", 0.5, 7, true},
		{"", "", 0, 0, false},
		{"shop14:zero", "", 0, 0, false},
		{"shop14:1:-2", "", 0, 0, false},
		{"shop14:1:2:3", "", 0, 0, false},
		{"shop14:0", "", 0, 0, false},
	}
	for _, c := range cases {
		name, scale, seed, err := parseDatasetSpec(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("parseDatasetSpec(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && (name != c.name || scale != c.scale || seed != c.seed) {
			t.Errorf("parseDatasetSpec(%q) = (%q, %v, %d)", c.spec, name, scale, seed)
		}
	}
}

func writeTestDB(t *testing.T) string {
	t.Helper()
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= 40; ts += 2 {
		b.Add("bread", ts)
		b.Add("jam", ts)
	}
	path := filepath.Join(t.TempDir(), "shop.tdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tsdb.Write(f, b.Build()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadDatabases(t *testing.T) {
	path := writeTestDB(t)

	dbs, err := loadDatabases([]string{"shop=" + path}, []string{"shop14:0.02:3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 || dbs["shop"] == nil || dbs["shop14"] == nil {
		t.Fatalf("loaded %d databases: %v", len(dbs), dbs)
	}
	if dbs["shop"].Len() != 20 {
		t.Errorf("shop has %d transactions, want 20", dbs["shop"].Len())
	}

	for _, bad := range [][2][]string{
		{{"shop"}, nil},                         // missing =path
		{{"=x"}, nil},                           // empty name
		{{"shop=" + path, "shop=" + path}, nil}, // duplicate file name
		{{"shop14=" + path}, {"shop14"}},        // duplicate across kinds
		{{"shop=/does/not/exist.tdb"}, nil},     // unreadable file
		{nil, []string{"unknowndataset"}},       // bench.Load rejects
	} {
		if _, err := loadDatabases(bad[0], bad[1]); err == nil {
			t.Errorf("loadDatabases(%v, %v) succeeded, want error", bad[0], bad[1])
		}
	}

	// No specs is valid since the dataset registry: a registry-only server
	// starts empty and serves whatever clients upload.
	if dbs, err := loadDatabases(nil, nil); err != nil || len(dbs) != 0 {
		t.Errorf("loadDatabases(nil, nil) = %v, %v; want empty map", dbs, err)
	}
}

// TestServerWiring loads databases the way main does and checks the
// resulting handler answers; full process lifecycle (signals, drain) is
// exercised by scripts/smoke_rpserved.sh.
func TestServerWiring(t *testing.T) {
	dbs, err := loadDatabases([]string{"shop=" + writeTestDB(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{}, dbs)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/mine", "application/json",
		strings.NewReader(`{"db":"shop","per":2,"minPS":3,"minRec":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine via loaded db: status %d", resp.StatusCode)
	}
}

// TestObservabilityWiring serves with the same config shape run() builds
// from -max-body/-pprof and checks the observability surface answers: a
// Prometheus scrape, an access-log line, a 413 on an oversized body, and
// the pprof mount.
func TestObservabilityWiring(t *testing.T) {
	dbs, err := loadDatabases([]string{"shop=" + writeTestDB(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	var mu sync.Mutex
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	})
	srv, err := serve.NewServer(serve.Config{
		MaxBody: 128,
		Logger:  obs.NewLogger(logw, slog.LevelInfo),
		Pprof:   true,
	}, dbs)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/mine", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"db":"shop","per":2,"minPS":3,"minRec":1}`); got != http.StatusOK {
		t.Fatalf("mine: status %d", got)
	}
	if got := post(strings.Repeat(" ", 256) + `{"db":"shop","per":2}`); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", got)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"rpserved_mining_seconds_bucket", "rpserved_requests_total 2"} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("metrics scrape missing %q:\n%s", want, scrape)
		}
	}

	resp, err = http.Get(hs.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof mount: status %d", resp.StatusCode)
	}

	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	for _, want := range []string{"outcome=ok", "outcome=body-too-large", "id="} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
}

// writerFunc adapts a function to io.Writer for log capture.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
