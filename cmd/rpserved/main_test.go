package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/serve"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestParseDatasetSpec(t *testing.T) {
	cases := []struct {
		spec  string
		name  string
		scale float64
		seed  uint64
		ok    bool
	}{
		{"shop14", "shop14", 1, 1, true},
		{"shop14:0.05", "shop14", 0.05, 1, true},
		{"twitter:0.5:7", "twitter", 0.5, 7, true},
		{"", "", 0, 0, false},
		{"shop14:zero", "", 0, 0, false},
		{"shop14:1:-2", "", 0, 0, false},
		{"shop14:1:2:3", "", 0, 0, false},
		{"shop14:0", "", 0, 0, false},
	}
	for _, c := range cases {
		name, scale, seed, err := parseDatasetSpec(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("parseDatasetSpec(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && (name != c.name || scale != c.scale || seed != c.seed) {
			t.Errorf("parseDatasetSpec(%q) = (%q, %v, %d)", c.spec, name, scale, seed)
		}
	}
}

func writeTestDB(t *testing.T) string {
	t.Helper()
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= 40; ts += 2 {
		b.Add("bread", ts)
		b.Add("jam", ts)
	}
	path := filepath.Join(t.TempDir(), "shop.tdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tsdb.Write(f, b.Build()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadDatabases(t *testing.T) {
	path := writeTestDB(t)

	dbs, err := loadDatabases([]string{"shop=" + path}, []string{"shop14:0.02:3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 || dbs["shop"] == nil || dbs["shop14"] == nil {
		t.Fatalf("loaded %d databases: %v", len(dbs), dbs)
	}
	if dbs["shop"].Len() != 20 {
		t.Errorf("shop has %d transactions, want 20", dbs["shop"].Len())
	}

	for _, bad := range [][2][]string{
		{{"shop"}, nil},                         // missing =path
		{{"=x"}, nil},                           // empty name
		{{"shop=" + path, "shop=" + path}, nil}, // duplicate file name
		{{"shop14=" + path}, {"shop14"}},        // duplicate across kinds
		{{"shop=/does/not/exist.tdb"}, nil},     // unreadable file
		{nil, []string{"unknowndataset"}},       // bench.Load rejects
		{nil, nil},                              // nothing to serve
	} {
		if _, err := loadDatabases(bad[0], bad[1]); err == nil {
			t.Errorf("loadDatabases(%v, %v) succeeded, want error", bad[0], bad[1])
		}
	}
}

// TestServerWiring loads databases the way main does and checks the
// resulting handler answers; full process lifecycle (signals, drain) is
// exercised by scripts/smoke_rpserved.sh.
func TestServerWiring(t *testing.T) {
	dbs, err := loadDatabases([]string{"shop=" + writeTestDB(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{}, dbs)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/mine", "application/json",
		strings.NewReader(`{"db":"shop","per":2,"minPS":3,"minRec":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine via loaded db: status %d", resp.StatusCode)
	}
}
