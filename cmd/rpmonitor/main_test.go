package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestMonitorStream(t *testing.T) {
	var in strings.Builder
	// Burst of x,y at 1-3, quiet, burst again at 50-52.
	for _, ts := range []int{1, 2, 3, 50, 51, 52} {
		in.WriteString(strings.Join([]string{itoa(ts), "x y"}, "\t") + "\n")
	}
	in.WriteString("200\tz\n")
	var out bytes.Buffer
	err := run([]string{"-per", "2", "-minps", "3", "-minrec", "1", "-window", "100",
		"-watch", "x,y"}, strings.NewReader(in.String()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "RECURRING ts=3") {
		t.Errorf("missing recurrence alert:\n%s", s)
	}
	if !strings.Contains(s, "quiet     ts=200") {
		t.Errorf("missing quiet alert after window slide:\n%s", s)
	}
}

func TestMonitorFinalState(t *testing.T) {
	in := "1\ta\n2\ta\n3\ta\n"
	var out bytes.Buffer
	err := run([]string{"-per", "2", "-minps", "3", "-window", "100", "-watch", "a"},
		strings.NewReader(in), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final: recurring {a}") {
		t.Errorf("missing final state:\n%s", out.String())
	}
}

func TestMonitorEmerging(t *testing.T) {
	// Item a recurs; z appears once and can never reach minPS. The two
	// same-timestamp lines at ts=3 must fold into one transaction for the
	// incremental accumulator instead of tripping its strictly-increasing
	// timestamp contract.
	in := "1\ta\n2\ta\n3\ta\n3\tz\n4\ta\n"
	var out bytes.Buffer
	err := run([]string{"-per", "2", "-minps", "3", "-window", "100",
		"-watch", "a", "-emerging"}, strings.NewReader(in), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "emerging: a sup=4") {
		t.Errorf("missing emerging candidate a:\n%s", s)
	}
	if strings.Contains(s, "emerging: z") {
		t.Errorf("one-shot item z reported as emerging:\n%s", s)
	}
}

func TestMonitorPhases(t *testing.T) {
	in := "1\ta\n2\ta\n3\ta\n4\ta\n"
	var out, errOut bytes.Buffer
	err := run([]string{"-per", "2", "-minps", "3", "-window", "100",
		"-watch", "a", "-emerging", "-phases"}, strings.NewReader(in), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mined: 1 recurring patterns over 4 transactions") {
		t.Errorf("missing end-of-stream mine summary:\n%s", out.String())
	}
	// The breakdown lands on stderr, with the phase taxonomy rpmine prints.
	for _, phase := range []string{"scan", "tree-build", "mine", "finalize"} {
		if !strings.Contains(errOut.String(), phase) {
			t.Errorf("phase table lacks %q:\n%s", phase, errOut.String())
		}
	}
	if strings.Contains(out.String(), "scan") {
		t.Error("phase table leaked onto stdout")
	}

	// -phases without -emerging has nothing to mine: reject it.
	if err := run([]string{"-per", "2", "-minps", "3", "-window", "10",
		"-watch", "a", "-phases"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("-phases without -emerging must fail")
	}
}

func TestMonitorErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-per", "2", "-minps", "3", "-window", "10"},
		strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("no watch patterns must fail")
	}
	if err := run([]string{"-per", "2", "-minps", "3", "-window", "10", "-watch", "a,,b"},
		strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("empty item in watch pattern must fail")
	}
	if err := run([]string{"-per", "2", "-minps", "3", "-window", "10", "-watch", "a"},
		strings.NewReader("oops\n"), &out, io.Discard); err == nil {
		t.Error("garbage input must fail")
	}
	if err := run([]string{"-per", "2", "-minps", "3", "-window", "10", "-watch", "a"},
		strings.NewReader("5\ta\n3\ta\n"), &out, io.Discard); err == nil {
		t.Error("out-of-order stream must fail")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("bad flag must fail")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
