// Command rpmonitor watches a live transaction stream for patterns
// becoming (or ceasing to be) recurring inside a sliding time window — the
// online face of the recurring pattern model, for uses like alerting when
// a failure signature starts firing periodically.
//
// It reads transactions from stdin in the usual text format
// ("timestamp<TAB>item item ..."), evaluates each watched pattern after
// every transaction, and prints an alert line on each state transition:
//
//	RECURRING  ts=10080 rec=2 {sev1-linkdown,sev1-bgp-flap}
//	quiet      ts=12000 rec=0 {sev1-linkdown,sev1-bgp-flap}
//
// With -emerging it additionally feeds every transaction into the
// incremental RP-list accumulator and, at end of stream, prints the items
// that could still be part of a recurring pattern over everything seen —
// a cheap way to discover what to -watch next:
//
//	emerging: cat22 sup=412 erec=3
//
// Adding -phases (which requires -emerging) mines the accumulated stream
// once at end of stream and prints the same per-phase time and work
// breakdown rpmine -phases prints, on stderr.
//
// With -remote URL the raw stream is additionally buffered and, at end of
// stream, uploaded to an rpserved's dataset registry (POST /v1/datasets)
// and mined there by fingerprint over the versioned wire API — the batch
// check runs on the server instead of in-process.
//
// Example:
//
//	rpgen -dataset shop14 -scale 0.1 | rpmonitor -per 360 -minps 30 -window 10080 -watch cat22,cat37
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/api"
	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/ext"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpmonitor:", err)
		os.Exit(1)
	}
}

type watchList [][]string

func (w *watchList) String() string { return fmt.Sprint([][]string(*w)) }
func (w *watchList) Set(v string) error {
	items := strings.Split(v, ",")
	for i := range items {
		items[i] = strings.TrimSpace(items[i])
		if items[i] == "" {
			return fmt.Errorf("empty item in watch pattern %q", v)
		}
	}
	*w = append(*w, items)
	return nil
}

func run(args []string, in io.Reader, dst, errDst io.Writer) error {
	// Latch write errors once instead of checking every alert line.
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpmonitor", flag.ContinueOnError)
	var watch watchList
	var (
		per      = fs.Int64("per", 0, "period threshold (required)")
		minPS    = fs.Int("minps", 0, "minimum periodic support (required)")
		minRec   = fs.Int("minrec", 1, "minimum recurrence")
		window   = fs.Int64("window", 0, "sliding window width in timestamp units (required)")
		final    = fs.Bool("final", true, "print the patterns recurring at end of stream")
		emerging = fs.Bool("emerging", false, "print the RP-list candidate items over the whole stream at end")
		phases   = fs.Bool("phases", false, "with -emerging: mine the accumulated stream at end and print a per-phase breakdown to stderr")
		remote   = fs.String("remote", "", "rpserved base URL: at end of stream, upload the buffered stream to /v1/datasets and mine it remotely")
	)
	fs.Var(&watch, "watch", "comma-separated pattern to watch (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *phases && !*emerging {
		return fmt.Errorf("-phases requires -emerging (the breakdown comes from mining the accumulated stream)")
	}
	o := rp.Options{Per: *per, MinPS: *minPS, MinRec: *minRec}
	if *phases {
		// The trace travels inside the options the incremental accumulator
		// stores, so the end-of-stream mine below reports into it.
		o.Trace = rp.NewTrace()
	}
	m, err := ext.NewMonitor(o, *window, watch)
	if err != nil {
		return err
	}
	var feed *incFeed
	if *emerging {
		inc, err := rp.NewIncremental(o)
		if err != nil {
			return err
		}
		feed = &incFeed{inc: inc}
	}

	// With -remote the raw stream is buffered so the whole thing can be
	// uploaded as a dataset at end of stream.
	var streamBuf *bytes.Buffer
	if *remote != "" {
		streamBuf = &bytes.Buffer{}
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if streamBuf != nil {
			streamBuf.WriteString(line)
			streamBuf.WriteByte('\n')
		}
		tsStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			tsStr, rest, ok = strings.Cut(line, " ")
			if !ok {
				return fmt.Errorf("line %d: missing item list", lineNo)
			}
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(tsStr), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad timestamp %q", lineNo, tsStr)
		}
		items := strings.Fields(rest)
		alerts, err := m.Observe(ts, items...)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if feed != nil {
			if err := feed.observe(ts, items); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		for _, a := range alerts {
			state := "quiet"
			if a.Recurring {
				state = "RECURRING"
			}
			fmt.Fprintf(out, "%-9s ts=%d rec=%d {%s}\n",
				state, a.TS, a.Recurrence, strings.Join(a.Pattern, ","))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if *final {
		for _, p := range m.Recurring() {
			fmt.Fprintf(out, "final: recurring {%s}\n", strings.Join(p, ","))
		}
	}
	if feed != nil {
		if err := feed.flush(); err != nil {
			return err
		}
		for _, c := range feed.inc.Candidates() {
			fmt.Fprintf(out, "emerging: %s sup=%d erec=%d\n", c.Item, c.Support, c.Erec)
		}
		if *phases {
			patterns, err := feed.inc.Mine()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "mined: %d recurring patterns over %d transactions\n",
				len(patterns), feed.inc.Len())
			// The phase table goes to stderr so the alert stream on stdout
			// stays machine-readable.
			if _, err := io.WriteString(errDst, o.Trace.Report().String()); err != nil {
				return err
			}
		}
	}
	if streamBuf != nil {
		if err := remoteMine(*remote, streamBuf, o, out); err != nil {
			return err
		}
	}
	return out.Err()
}

// remoteMine uploads the buffered stream to an rpserved's dataset registry
// and mines it by fingerprint over the versioned wire API — the
// end-of-stream batch check done on a server instead of in-process.
func remoteMine(base string, stream io.Reader, o rp.Options, out *cliio.Writer) error {
	base = strings.TrimRight(base, "/")
	resp, err := http.Post(base+"/v1/datasets", "text/plain", stream)
	if err != nil {
		return fmt.Errorf("uploading stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("uploading stream: %s: %s", resp.Status, decodeErrorBody(resp.Body))
	}
	var up struct {
		Fingerprint  string `json:"fingerprint"`
		Transactions int    `json:"transactions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		return fmt.Errorf("decoding upload response: %w", err)
	}

	body, err := json.Marshal(api.MineRequest{
		V:       api.Version,
		Dataset: up.Fingerprint,
		Per:     o.Per,
		MinPS:   o.MinPS,
		MinRec:  o.MinRec,
	})
	if err != nil {
		return err
	}
	mresp, err := http.Post(base+"/v1/mine", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("remote mine: %w", err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote mine: %s: %s", mresp.Status, decodeErrorBody(mresp.Body))
	}
	var mr api.MineResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		return fmt.Errorf("decoding mine response: %w", err)
	}
	fmt.Fprintf(out, "remote: %d recurring patterns over %d transactions (dataset %s)\n",
		mr.Count, up.Transactions, up.Fingerprint)
	for _, p := range mr.Patterns {
		fmt.Fprintf(out, "remote: {%s} sup=%d rec=%d\n",
			strings.Join(p.Items, ","), p.Support, p.Recurrence)
	}
	return nil
}

// decodeErrorBody extracts an api.ErrorResponse message, falling back to a
// bounded raw prefix.
func decodeErrorBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e api.ErrorResponse
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// incFeed buffers consecutive same-timestamp lines into one transaction so
// the strictly-increasing-timestamp contract of rp.Incremental holds even
// when the stream emits several lines for one instant (which the monitor
// itself accepts).
type incFeed struct {
	inc   *rp.Incremental
	ts    int64
	items []string
}

func (f *incFeed) observe(ts int64, items []string) error {
	if len(f.items) > 0 && ts == f.ts {
		f.items = append(f.items, items...)
		return nil
	}
	if err := f.flush(); err != nil {
		return err
	}
	f.ts = ts
	f.items = append(f.items[:0], items...)
	return nil
}

func (f *incFeed) flush() error {
	if len(f.items) == 0 {
		return nil
	}
	err := f.inc.Append(f.ts, f.items...)
	f.items = f.items[:0]
	return err
}
