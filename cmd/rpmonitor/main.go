// Command rpmonitor watches a live transaction stream for patterns
// becoming (or ceasing to be) recurring inside a sliding time window — the
// online face of the recurring pattern model, for uses like alerting when
// a failure signature starts firing periodically.
//
// It reads transactions from stdin in the usual text format
// ("timestamp<TAB>item item ..."), evaluates each watched pattern after
// every transaction, and prints an alert line on each state transition:
//
//	RECURRING  ts=10080 rec=2 {sev1-linkdown,sev1-bgp-flap}
//	quiet      ts=12000 rec=0 {sev1-linkdown,sev1-bgp-flap}
//
// Example:
//
//	rpgen -dataset shop14 -scale 0.1 | rpmonitor -per 360 -minps 30 -window 10080 -watch cat22,cat37
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/ext"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpmonitor:", err)
		os.Exit(1)
	}
}

type watchList [][]string

func (w *watchList) String() string { return fmt.Sprint([][]string(*w)) }
func (w *watchList) Set(v string) error {
	items := strings.Split(v, ",")
	for i := range items {
		items[i] = strings.TrimSpace(items[i])
		if items[i] == "" {
			return fmt.Errorf("empty item in watch pattern %q", v)
		}
	}
	*w = append(*w, items)
	return nil
}

func run(args []string, in io.Reader, dst io.Writer) error {
	// Latch write errors once instead of checking every alert line.
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpmonitor", flag.ContinueOnError)
	var watch watchList
	var (
		per    = fs.Int64("per", 0, "period threshold (required)")
		minPS  = fs.Int("minps", 0, "minimum periodic support (required)")
		minRec = fs.Int("minrec", 1, "minimum recurrence")
		window = fs.Int64("window", 0, "sliding window width in timestamp units (required)")
		final  = fs.Bool("final", true, "print the patterns recurring at end of stream")
	)
	fs.Var(&watch, "watch", "comma-separated pattern to watch (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := ext.NewMonitor(core.Options{Per: *per, MinPS: *minPS, MinRec: *minRec}, *window, watch)
	if err != nil {
		return err
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tsStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			tsStr, rest, ok = strings.Cut(line, " ")
			if !ok {
				return fmt.Errorf("line %d: missing item list", lineNo)
			}
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(tsStr), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad timestamp %q", lineNo, tsStr)
		}
		alerts, err := m.Observe(ts, strings.Fields(rest)...)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		for _, a := range alerts {
			state := "quiet"
			if a.Recurring {
				state = "RECURRING"
			}
			fmt.Fprintf(out, "%-9s ts=%d rec=%d {%s}\n",
				state, a.TS, a.Recurrence, strings.Join(a.Pattern, ","))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if *final {
		for _, p := range m.Recurring() {
			fmt.Fprintf(out, "final: recurring {%s}\n", strings.Join(p, ","))
		}
	}
	return out.Err()
}
