// Command rpvet runs this repository's custom static-analysis passes: the
// determinism, errcheck, layering and concurrency rules of
// internal/analysis. It is stdlib-only (go/parser + go/types, no external
// driver) and is part of the repo gate: scripts/check.sh runs it next to
// go vet and the race-enabled tests, and CI fails on any finding.
//
// Usage:
//
//	rpvet [-list] [-pass name[,name...]] [package-dir | ./... ...]
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed. Findings print one per line as "file:line:col: pass: message"
// and make the exit status 1; a clean tree exits 0.
//
// A finding is suppressed by a "//rpvet:allow <pass>" comment on the
// flagged line or the line above it — the escape hatch for, e.g., the
// benchmark timing code that is allowed to call time.Now.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/recurpat/rp/internal/analysis"
	"github.com/recurpat/rp/internal/cliio"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("rpvet", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the passes and exit")
		passFlag = fs.String("pass", "", "run only these comma-separated passes (default: all)")
		dirFlag  = fs.String("C", "", "change to this directory before resolving packages")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		w := cliio.NewWriter(out)
		for _, p := range analysis.Passes() {
			fmt.Fprintf(w, "%-12s %s\n", p.Name, p.Doc)
		}
		return 0, w.Err()
	}
	passes := analysis.Passes()
	if *passFlag != "" {
		passes = passes[:0]
		for _, name := range strings.Split(*passFlag, ",") {
			p := analysis.PassByName(strings.TrimSpace(name))
			if p == nil {
				return 2, fmt.Errorf("unknown pass %q (see -list)", name)
			}
			passes = append(passes, p)
		}
	}

	base := *dirFlag
	if base == "" {
		var err error
		if base, err = os.Getwd(); err != nil {
			return 2, err
		}
	}
	root, err := analysis.FindModuleRoot(base)
	if err != nil {
		return 2, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 2, err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []*analysis.Package
		var err error
		switch {
		case pat == "./..." || pat == "...":
			batch, err = loader.LoadAll()
		case strings.HasSuffix(pat, "/..."):
			batch, err = loadTree(loader, filepath.Join(base, strings.TrimSuffix(pat, "/...")))
		default:
			batch, err = loader.LoadDirs([]string{filepath.Join(base, pat)})
		}
		if err != nil {
			return 2, err
		}
		for _, p := range batch {
			if !seen[p.PkgPath] {
				seen[p.PkgPath] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	diags := analysis.Run(loader, pkgs, passes)
	n, err := analysis.Print(out, root, diags)
	if err != nil {
		return 2, err
	}
	if n > 0 {
		return 1, nil
	}
	return 0, nil
}

// loadTree loads every package at or below dir, mirroring the go tool's
// dir/... pattern.
func loadTree(loader *analysis.Loader, dir string) ([]*analysis.Package, error) {
	all, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, p := range all {
		if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
			out = append(out, p)
		}
	}
	return out, nil
}
