// Command rpvet runs this repository's custom static-analysis passes: the
// determinism, errcheck, layering, concurrency, sortslice, ctxflow and
// goroutine-lifecycle rules of internal/analysis. It is stdlib-only
// (go/parser + go/types, no external driver) and is part of the repo
// gate: scripts/check.sh runs it next to go vet and the race-enabled
// tests, and CI fails on any finding.
//
// Usage:
//
//	rpvet [flags] [package-dir | ./... ...]
//
//	-list            list pass names, versions and one-line docs
//	-passes a,b,...  run only these passes (alias: -pass)
//	-format f        output format: text (default), json, or sarif
//	-fix             apply the findings' suggested fixes to the tree
//	-diff            with -fix: print a unified diff instead of writing
//	-j N             analysis parallelism (default GOMAXPROCS; 1 = sequential)
//	-cache           use the on-disk result cache (default true)
//	-cache-dir dir   cache location (default <module>/.rpvetcache)
//	-C dir           change to this directory before resolving packages
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed. Findings print one per line as "file:line:col: pass: message"
// and make the exit status 1; a clean tree exits 0.
//
// Packages load and analyze in parallel, and per-(package, pass) results
// are cached under .rpvetcache keyed by content and pass-version hashes,
// so a warm run costs milliseconds; the merged output is byte-identical
// to a sequential, uncached run either way.
//
// A finding is suppressed by a "//rpvet:allow <pass> <reason>" comment on
// the flagged line or the line above it — the escape hatch for, e.g., the
// benchmark timing code that is allowed to call time.Now. The reason is
// part of the contract: an unexplained suppression fails review, not the
// tool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/recurpat/rp/internal/analysis"
	"github.com/recurpat/rp/internal/cliio"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("rpvet", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the passes and exit")
		passFlag  = fs.String("pass", "", "run only these comma-separated passes (default: all)")
		passesFlg = fs.String("passes", "", "alias for -pass")
		formatFlg = fs.String("format", "text", "output format: text, json, or sarif")
		fixFlag   = fs.Bool("fix", false, "apply suggested fixes to the tree")
		diffFlag  = fs.Bool("diff", false, "with -fix: print a unified diff instead of writing files")
		jFlag     = fs.Int("j", 0, "analysis parallelism (0 = GOMAXPROCS, 1 = sequential)")
		cacheFlag = fs.Bool("cache", true, "use the on-disk result cache")
		cacheDir  = fs.String("cache-dir", "", "result cache directory (default <module>/.rpvetcache)")
		dirFlag   = fs.String("C", "", "change to this directory before resolving packages")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		w := cliio.NewWriter(out)
		for _, p := range analysis.Passes() {
			fmt.Fprintf(w, "%-20s v%-3d %s\n", p.Name, p.Version, p.Doc)
		}
		return 0, w.Err()
	}
	if *diffFlag && !*fixFlag {
		return 2, fmt.Errorf("-diff requires -fix")
	}
	switch *formatFlg {
	case "text", "json", "sarif":
	default:
		return 2, fmt.Errorf("unknown -format %q (want text, json or sarif)", *formatFlg)
	}
	selector := *passFlag
	if *passesFlg != "" {
		if selector != "" && selector != *passesFlg {
			return 2, fmt.Errorf("-pass and -passes disagree; set only one")
		}
		selector = *passesFlg
	}
	passes := analysis.Passes()
	if selector != "" {
		passes = passes[:0]
		for _, name := range strings.Split(selector, ",") {
			p := analysis.PassByName(strings.TrimSpace(name))
			if p == nil {
				return 2, fmt.Errorf("unknown pass %q (see -list)", name)
			}
			passes = append(passes, p)
		}
	}

	base := *dirFlag
	if base == "" {
		var err error
		if base, err = os.Getwd(); err != nil {
			return 2, err
		}
	}
	root, err := analysis.FindModuleRoot(base)
	if err != nil {
		return 2, err
	}

	dirs, err := resolvePatterns(root, base, fs.Args())
	if err != nil {
		return 2, err
	}

	driver := &analysis.Driver{Root: root, Passes: passes, Workers: *jFlag}
	if *cacheFlag {
		dir := *cacheDir
		if dir == "" {
			dir = filepath.Join(root, ".rpvetcache")
		}
		cache, err := analysis.OpenCache(dir, root)
		if err != nil {
			return 2, err
		}
		driver.Cache = cache
	}
	diags, err := driver.Run(dirs)
	if err != nil {
		return 2, err
	}

	if *fixFlag {
		return applyFixes(out, root, diags, *diffFlag)
	}

	var n int
	switch *formatFlg {
	case "text":
		n, err = analysis.Print(out, root, diags)
	case "json":
		n, err = analysis.WriteJSON(out, root, diags)
	case "sarif":
		n, err = analysis.WriteSARIF(out, root, passes, diags)
	}
	if err != nil {
		return 2, err
	}
	if n > 0 {
		return 1, nil
	}
	return 0, nil
}

// applyFixes materializes suggested fixes: with diff=true it prints the
// pending rewrite as a unified diff (exit 1 when non-empty, the contract
// `make vet-fix-check` relies on); otherwise it writes the files and then
// reports the findings no fix could resolve.
func applyFixes(out io.Writer, root string, diags []analysis.Diagnostic, diff bool) (int, error) {
	res, err := analysis.ApplyFixes(diags)
	if err != nil {
		return 2, err
	}
	if diff {
		text, err := res.Diff(root)
		if err != nil {
			return 2, err
		}
		if text == "" {
			return 0, nil
		}
		if _, err := io.WriteString(out, text); err != nil {
			return 2, err
		}
		return 1, nil
	}
	if err := res.Write(); err != nil {
		return 2, err
	}
	fmt.Fprintf(os.Stderr, "rpvet: applied %d fix(es) to %d file(s)", res.Applied, len(res.Files))
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, ", skipped %d conflicting", res.Skipped)
	}
	fmt.Fprintln(os.Stderr)
	var unfixed []analysis.Diagnostic
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			unfixed = append(unfixed, d)
		}
	}
	n, err := analysis.Print(out, root, unfixed)
	if err != nil {
		return 2, err
	}
	if n > 0 {
		return 1, nil
	}
	return 0, nil
}

// resolvePatterns maps the command-line package patterns to directories:
// "./..." (or no argument) is the whole module, "dir/..." a subtree, and
// anything else a single package directory.
func resolvePatterns(root, base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	var all []string // module dirs, resolved lazily
	moduleDirs := func() ([]string, error) {
		if all == nil {
			var err error
			all, err = analysis.ModuleDirs(root)
			if err != nil {
				return nil, err
			}
		}
		return all, nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			md, err := moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range md {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix, err := filepath.Abs(filepath.Join(base, strings.TrimSuffix(pat, "/...")))
			if err != nil {
				return nil, err
			}
			md, err := moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range md {
				if d == prefix || strings.HasPrefix(d, prefix+string(filepath.Separator)) {
					add(d)
				}
			}
		default:
			abs, err := filepath.Abs(filepath.Join(base, pat))
			if err != nil {
				return nil, err
			}
			add(abs)
		}
	}
	return dirs, nil
}
