package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir points at the rpfix fixture module used by the analysis
// package's golden tests.
var fixtureDir = filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "rpfix")

func TestListPasses(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"determinism", "errcheck", "layering", "concurrency"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing pass %q:\n%s", name, out.String())
		}
	}
}

func TestFixtureModuleFails(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-C", fixtureDir, "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d on seeded-violation fixture, want 1\n%s", code, out.String())
	}
	for _, pass := range []string{" determinism: ", " errcheck: ", " layering: ", " concurrency: "} {
		if !strings.Contains(out.String(), pass) {
			t.Errorf("fixture run missing findings from%spass:\n%s", pass, out.String())
		}
	}
}

func TestPassFilter(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-C", fixtureDir, "-pass", "layering", "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.Contains(line, " layering: ") {
			t.Errorf("-pass layering leaked a foreign finding: %s", line)
		}
	}
}

func TestDirPattern(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-C", fixtureDir, "internal/baseline/..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "internal/baseline/") {
			t.Errorf("internal/baseline/... matched a package outside the tree: %s", line)
		}
	}
}

func TestUnknownPass(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-pass", "nonsense"}, &out)
	if err == nil || code != 2 {
		t.Fatalf("run(-pass nonsense) = %d, %v; want code 2 and an error", code, err)
	}
}

// TestRepoIsClean is the gate the other tests exist to protect: rpvet over
// this repository itself must exit 0 with no output.
func TestRepoIsClean(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-C", filepath.Join("..", "..")}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("rpvet on this repo: exit %d with output:\n%s", code, out.String())
	}
}
