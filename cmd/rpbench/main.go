// Command rpbench regenerates the tables and figures of the paper's
// evaluation section on the simulated datasets.
//
// Usage:
//
//	rpbench [flags] <experiment>
//
// where <experiment> is one of
//
//	table5    number of recurring patterns over the full threshold grid
//	table6    rediscovered Twitter event patterns with periodic durations
//	table7    RP-growth runtime over the full threshold grid
//	table8    PF vs recurring vs p-pattern comparison (Shop-14, Twitter)
//	figure7   recurring pattern counts vs minPS sweep (Twitter)
//	figure8   daily frequencies of the Figure 8 hashtags
//	figure9   RP-growth runtime vs minPS sweep (Twitter)
//	sweep     figure7 and figure9 from a single sweep (half the mining)
//	ablation  design-choice studies: pruning, tree vs vertical, item order
//	all       everything above, in order
//
// -scale runs reduced datasets (same distributions) for quick smoke runs;
// EXPERIMENTS.md records full-scale (-scale 1) output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, dst, errDst io.Writer) error {
	// Latch write errors once instead of checking every table print.
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpbench", flag.ContinueOnError)
	var (
		scale   = fs.Float64("scale", 1.0, "dataset size relative to the paper")
		seed    = fs.Uint64("seed", 1, "generator seed")
		dataset = fs.String("dataset", "", "restrict table5/table7/table8 to one dataset")
		from    = fs.Float64("sweep-from", 2, "figure7/9: first minPS percentage")
		to      = fs.Float64("sweep-to", 10, "figure7/9: last minPS percentage")
		step    = fs.Float64("sweep-step", 1, "figure7/9: minPS percentage step")
		t8sup   = fs.Float64("table8-sup-pct", 0, "table8: override minSup/minPS percentage (0 = paper values; raise for reduced scales)")
		t7mult  = fs.Float64("table7-ps-mult", 1, "table7: multiply the paper minPS percentages (raise for reduced scales)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the experiments to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		jsonOut = fs.String("json", "", "trace the timed experiments (table7) and write phase-attributed benchmark rows to this JSON report file")
		verbose = fs.Bool("v", false, "structured progress logs on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one experiment argument, got %d (see -h)", fs.NArg())
	}
	exp := fs.Arg(0)

	datasets := bench.DatasetNames()
	if *dataset != "" {
		datasets = []string{*dataset}
	}

	experiments := []string{exp}
	if exp == "all" {
		// "sweep" covers figure7 and figure9 with one set of mining runs.
		experiments = []string{"table5", "table6", "table7", "table8", "sweep", "figure8", "ablation"}
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = obs.NewLogger(errDst, slog.LevelInfo)
	}
	var rep *bench.Report
	if *jsonOut != "" {
		rep = &bench.Report{Context: map[string]string{
			"tool":  "rpbench",
			"scale": fmt.Sprintf("%g", *scale),
			"seed":  fmt.Sprintf("%d", *seed),
		}}
	}
	err := cliio.Profile(*cpuProf, *memProf, func() error {
		for _, e := range experiments {
			start := time.Now() //rpvet:allow determinism — elapsed-time reporting is the point here
			fmt.Fprintf(out, "== %s (scale %g, seed %d) ==\n", e, *scale, *seed)
			logger.Info("experiment start", "experiment", e, "scale", *scale, "seed", *seed)
			if err := runOne(e, datasets, *scale, *seed, *from, *to, *step, *t8sup, *t7mult, out, logger, rep); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			elapsed := time.Since(start)
			logger.Info("experiment done", "experiment", e, "elapsedMS", float64(elapsed)/1e6)
			fmt.Fprintf(out, "-- %s done in %v --\n\n", e, elapsed.Round(time.Millisecond))
		}
		return out.Err()
	})
	if err != nil || rep == nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("-json %s: no timed experiment in %v produced benchmark rows (phase attribution comes from table7)", *jsonOut, experiments)
	}
	data, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	logger.Info("benchmark report written", "path", *jsonOut, "rows", len(rep.Benchmarks))
	return os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
}

func runOne(exp string, datasets []string, scale float64, seed uint64, from, to, step, t8sup, t7mult float64, out *cliio.Writer, logger *slog.Logger, rep *bench.Report) error {
	load := func(name string) (*bench.Dataset, error) {
		start := time.Now() //rpvet:allow determinism — load-time reporting for -v
		d, err := bench.Load(name, scale, seed)
		if err == nil {
			logger.Info("dataset loaded", "dataset", name,
				"transactions", d.DB.Len(), "loadMS", float64(time.Since(start))/1e6)
		}
		return d, err
	}
	twitter := func() (*bench.Dataset, error) { return load("twitter") }
	switch exp {
	case "table5":
		for _, name := range datasets {
			d, err := load(name)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "#", name, tsdb.ComputeStats(d.DB))
			rows, err := bench.Table5(d)
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatTable5(rows))
		}
	case "table6":
		d, err := twitter()
		if err != nil {
			return err
		}
		rows, err := bench.Table6(d, 2)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatTable6(rows))
	case "table7":
		for _, name := range datasets {
			d, err := load(name)
			if err != nil {
				return err
			}
			if t7mult != 1 {
				// Reduced-scale datasets keep full-rate transactions, so
				// the paper's minPS percentages admit far more mining work
				// than full-size runs; let smokes raise them.
				scaled := *d
				for i, pct := range d.MinPSPercents {
					scaled.MinPSPercents[i] = pct * t7mult
				}
				d = &scaled
			}
			if rep == nil {
				rows, err := bench.Table7(d)
				if err != nil {
					return err
				}
				fmt.Fprint(out, bench.FormatTable7(rows))
				continue
			}
			// -json: trace every grid cell and keep the benchfmt-shaped
			// rows with per-phase attribution for the report file.
			rows, bms, err := bench.Table7Traced(d)
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatTable7(rows))
			fmt.Fprint(out, bench.FormatPhaseMetrics(bms))
			rep.Benchmarks = append(rep.Benchmarks, bms...)
		}
	case "table8":
		for _, name := range datasets {
			if name == "t10i4d100k" {
				continue // the paper compares on Shop-14 and Twitter only
			}
			d, err := load(name)
			if err != nil {
				return err
			}
			o := bench.DefaultTable8Options(name)
			if t8sup > 0 {
				o.SupPercent = t8sup
			}
			rows, err := bench.Table8(d, o)
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatTable8(rows))
		}
	case "figure7", "figure9", "sweep":
		d, err := twitter()
		if err != nil {
			return err
		}
		points, err := bench.Sweep(d, from, to, step)
		if err != nil {
			return err
		}
		if exp == "figure7" || exp == "sweep" {
			fmt.Fprintln(out, "# Figure 7: number of recurring patterns")
			fmt.Fprint(out, bench.FormatSweep(points, true))
		}
		if exp == "figure9" || exp == "sweep" {
			fmt.Fprintln(out, "# Figure 9: runtime (seconds)")
			fmt.Fprint(out, bench.FormatSweep(points, false))
		}
	case "figure8":
		d, err := twitter()
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatFigure8(bench.Figure8(d)))
	case "shape":
		var all []bench.Table5Row
		for _, name := range datasets {
			d, err := load(name)
			if err != nil {
				return err
			}
			rows, err := bench.Table5(d)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		fmt.Fprint(out, bench.FormatTable5(all))
		fmt.Fprint(out, bench.FormatShapeReport(bench.ShapeReport(all)))
	case "ablation":
		for _, name := range datasets {
			d, err := load(name)
			if err != nil {
				return err
			}
			o := core.Options{
				Per:    720,
				MinPS:  core.MinPSFromPercent(d.DB, d.MinPSPercents[1]),
				MinRec: 2,
			}
			// Same Options.Validate gate (and error text) as every other
			// entry point, before committing to a long ablation run.
			if err := o.Validate(); err != nil {
				return err
			}
			rows, err := bench.Ablations(d, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# %s (per=%d minPS=%d minRec=%d)\n", name, o.Per, o.MinPS, o.MinRec)
			fmt.Fprint(out, bench.FormatAblations(rows))
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
