package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/bench"
)

// The rpbench smoke tests run at tiny scales with raised sweep thresholds;
// full-scale output is recorded in EXPERIMENTS.md.

func TestBenchTable8Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-dataset", "shop14",
		"-table8-sup-pct", "3", "table8"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"PF patterns", "Recurring patterns", "p-patterns", "table8 done"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchFigure8Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "figure8"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uttarakhand") {
		t.Errorf("figure8 output missing tags:\n%s", out.String())
	}
}

func TestBenchFigure7Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "2",
		"-sweep-from", "15", "-sweep-to", "20", "-sweep-step", "5", "figure7"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minRec=2") {
		t.Errorf("figure7 output missing series:\n%s", out.String())
	}
}

func TestBenchArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, io.Discard); err == nil {
		t.Error("missing experiment must fail")
	}
	if err := run([]string{"nonsense"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run([]string{"-dataset", "nope", "table5"}, &out, io.Discard); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run([]string{"-badflag"}, &out, io.Discard); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestBenchTable7JSONPhases(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	err := run([]string{"-scale", "0.02", "-seed", "2", "-dataset", "shop14",
		"-table7-ps-mult", "25", "-json", jsonPath, "-v", "table7"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "phase attribution") {
		t.Errorf("output missing the phase attribution block:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "msg=\"experiment done\"") {
		t.Errorf("verbose log missing experiment line:\n%s", errOut.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid report JSON: %v\n%s", err, data)
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("report has no benchmark rows")
	}
	for _, bm := range rep.Benchmarks {
		if !strings.HasPrefix(bm.Name, "Table7/shop14/") {
			t.Errorf("unexpected row name %q", bm.Name)
		}
		if bm.Metrics["ns/op"] <= 0 {
			t.Errorf("%s: missing ns/op: %v", bm.Name, bm.Metrics)
		}
		for _, key := range []string{"scan-ns/op", "tree-build-ns/op", "mine-ns/op", "mine-count/op"} {
			if _, ok := bm.Metrics[key]; !ok {
				t.Errorf("%s: missing phase metric %q", bm.Name, key)
			}
		}
	}
}

func TestBenchJSONWithoutTimedExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-json", jsonPath, "figure8"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no timed experiment") {
		t.Fatalf("err = %v, want the no-timed-experiment error", err)
	}
	if _, statErr := os.Stat(jsonPath); !os.IsNotExist(statErr) {
		t.Error("report file created despite no benchmark rows")
	}
}
