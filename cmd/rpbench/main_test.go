package main

import (
	"bytes"
	"strings"
	"testing"
)

// The rpbench smoke tests run at tiny scales with raised sweep thresholds;
// full-scale output is recorded in EXPERIMENTS.md.

func TestBenchTable8Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-dataset", "shop14",
		"-table8-sup-pct", "3", "table8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"PF patterns", "Recurring patterns", "p-patterns", "table8 done"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchFigure8Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "figure8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uttarakhand") {
		t.Errorf("figure8 output missing tags:\n%s", out.String())
	}
}

func TestBenchFigure7Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "2",
		"-sweep-from", "15", "-sweep-to", "20", "-sweep-step", "5", "figure7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minRec=2") {
		t.Errorf("figure7 output missing series:\n%s", out.String())
	}
}

func TestBenchArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing experiment must fail")
	}
	if err := run([]string{"nonsense"}, &out); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run([]string{"-dataset", "nope", "table5"}, &out); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
}
