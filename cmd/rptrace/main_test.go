package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp"
)

// recordTrace mines a small database with a timeline attached and writes
// the trace-event file rptrace is pointed at.
func recordTrace(t *testing.T) string {
	t.Helper()
	b := rp.NewBuilder()
	for ts := int64(1); ts <= 40; ts += 2 {
		b.Add("bread", ts)
		b.Add("jam", ts)
	}
	o := rp.Options{Per: 4, MinPS: 3, MinRec: 1, Trace: rp.NewTrace()}
	tl := rp.NewTimeline(0)
	o.Trace.AttachTimeline(tl)
	if _, err := rp.Mine(b.Build(), o); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.WriteTraceEvents(f, "test run", tl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidTrace(t *testing.T) {
	path := recordTrace(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, path+": valid: ") || !strings.Contains(s, "spans on") {
		t.Errorf("summary line malformed:\n%s", s)
	}

	// -phases adds the per-phase table with the mining taxonomy.
	out.Reset()
	if err := run([]string{"-phases", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"scan", "tree-build", "mine", "finalize", "total"} {
		if !strings.Contains(out.String(), phase) {
			t.Errorf("-phases output lacks %q:\n%s", phase, out.String())
		}
	}

	// -q prints nothing on success.
	out.Reset()
	if err := run([]string{"-q", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("-q printed output: %q", out.String())
	}
}

func TestInvalidTrace(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.json":   `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"badtype.json": `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"garbage.json": `not json`,
	}
	var out bytes.Buffer
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{path}, &out); err == nil {
			t.Errorf("%s validated, want an error", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error %q does not name the file", name, err)
		}
	}
	if err := run([]string{filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-badflag"}, io.Discard); err == nil {
		t.Error("bad flag must fail")
	}
}
