package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/recurpat/rp"
)

// recordTrace mines a small database with a timeline attached and writes
// the trace-event file rptrace is pointed at.
func recordTrace(t *testing.T) string {
	t.Helper()
	b := rp.NewBuilder()
	for ts := int64(1); ts <= 40; ts += 2 {
		b.Add("bread", ts)
		b.Add("jam", ts)
	}
	o := rp.Options{Per: 4, MinPS: 3, MinRec: 1, Trace: rp.NewTrace()}
	tl := rp.NewTimeline(0)
	o.Trace.AttachTimeline(tl)
	if _, err := rp.Mine(b.Build(), o); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.WriteTraceEvents(f, "test run", tl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidTrace(t *testing.T) {
	path := recordTrace(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, path+": valid: ") || !strings.Contains(s, "spans on") {
		t.Errorf("summary line malformed:\n%s", s)
	}

	// -phases adds the per-phase table with the mining taxonomy.
	out.Reset()
	if err := run([]string{"-phases", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"scan", "tree-build", "mine", "finalize", "total"} {
		if !strings.Contains(out.String(), phase) {
			t.Errorf("-phases output lacks %q:\n%s", phase, out.String())
		}
	}

	// -q prints nothing on success.
	out.Reset()
	if err := run([]string{"-q", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("-q printed output: %q", out.String())
	}
}

// fleetTrace is a handcrafted merged scatter-gather recording: the
// coordinator track plus two peer tracks, one client annotation, and a
// dropped-span count — the shape rpserved's /debug/requests/trace emits
// for a traced fleet request.
const fleetTrace = `{"traceEvents":[
	{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"coordinator"}},
	{"name":"total","ph":"X","ts":0,"dur":100,"pid":1,"tid":0},
	{"name":"shard shard=0/2","ph":"X","ts":5,"dur":60,"pid":1,"tid":1},
	{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"peer http://a:1"}},
	{"name":"queue","ph":"X","ts":10,"dur":5,"pid":2,"tid":0},
	{"name":"mine","ph":"X","ts":15,"dur":40,"pid":2,"tid":0},
	{"name":"process_name","ph":"M","pid":3,"tid":0,"args":{"name":"peer http://b:1"}},
	{"name":"queue","ph":"X","ts":12,"dur":3,"pid":3,"tid":0},
	{"name":"retry 1 -> http://b:1","ph":"i","s":"p","ts":11,"pid":3,"tid":0}
],"displayTimeUnit":"ms","otherData":{"droppedSpans":"3"}}`

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRequestCostLine pins the summary's handling of the embedded request
// cost: printed when present, parsed strictly, absent otherwise.
func TestRequestCostLine(t *testing.T) {
	withCost := strings.Replace(fleetTrace, `"droppedSpans":"3"`,
		`"droppedSpans":"3","requestAllocBytes":"1048576","requestCPUMS":"12.500"`, 1)
	var out bytes.Buffer
	if err := run([]string{writeTrace(t, withCost)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "request cost: 1048576 bytes allocated, 12.5ms CPU") {
		t.Errorf("summary lacks the request cost line:\n%s", out.String())
	}

	// Without the cost keys (the fixture as-is) no cost line appears.
	out.Reset()
	if err := run([]string{writeTrace(t, fleetTrace)}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "request cost") {
		t.Errorf("cost line printed without cost metadata:\n%s", out.String())
	}

	// Garbage values fail loudly instead of echoing through.
	bad := strings.Replace(fleetTrace, `"droppedSpans":"3"`,
		`"requestAllocBytes":"lots"`, 1)
	out.Reset()
	if err := run([]string{writeTrace(t, bad)}, &out); err == nil ||
		!strings.Contains(err.Error(), "requestAllocBytes") {
		t.Errorf("malformed requestAllocBytes: err = %v, want parse failure", err)
	}
}

// TestByLane checks the per-process-track breakdown of a merged fleet
// trace: every track appears by name with its span count, and client
// annotations (instant events) are counted on the track they mark.
func TestByLane(t *testing.T) {
	path := writeTrace(t, fleetTrace)
	var out bytes.Buffer
	if err := run([]string{"-by-lane", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"pid 1  coordinator",
		"pid 2  peer http://a:1",
		"pid 3  peer http://b:1",
		"2 span(s)",
		"1 event(s)",
		"dropped spans: 3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-by-lane output lacks %q:\n%s", want, s)
		}
	}
	// The summary counts spans across all tracks.
	if !strings.Contains(s, "5 spans on") {
		t.Errorf("summary span count wrong:\n%s", s)
	}
}

// TestDroppedSpansParsing pins the summary's handling of the dropped-span
// count: a malformed value is an error, not something to echo through.
func TestDroppedSpansParsing(t *testing.T) {
	bad := strings.Replace(fleetTrace, `"droppedSpans":"3"`, `"droppedSpans":"lots"`, 1)
	path := writeTrace(t, bad)
	var out bytes.Buffer
	err := run([]string{path}, &out)
	if err == nil || !strings.Contains(err.Error(), "droppedSpans") {
		t.Errorf("malformed droppedSpans: err = %v, want parse failure", err)
	}
	// -q skips the summary entirely, so the same file validates quietly.
	out.Reset()
	if err := run([]string{"-q", path}, &out); err != nil || out.Len() != 0 {
		t.Errorf("-q on malformed droppedSpans: err=%v out=%q", err, out.String())
	}
	// A zero count prints no dropped-spans line.
	out.Reset()
	zero := strings.Replace(fleetTrace, `"droppedSpans":"3"`, `"droppedSpans":"0"`, 1)
	if err := run([]string{writeTrace(t, zero)}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "dropped spans") {
		t.Errorf("zero dropped count still printed:\n%s", out.String())
	}
}

func TestInvalidTrace(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.json":   `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"badtype.json": `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"garbage.json": `not json`,
	}
	var out bytes.Buffer
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{path}, &out); err == nil {
			t.Errorf("%s validated, want an error", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error %q does not name the file", name, err)
		}
	}
	if err := run([]string{filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-badflag"}, io.Discard); err == nil {
		t.Error("bad flag must fail")
	}
}
