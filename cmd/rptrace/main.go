// Command rptrace validates and summarizes Chrome trace-event JSON
// recordings produced by rpmine -trace-out, the rpserved
// /debug/requests/trace endpoint, or rp.WriteTraceEvents. It is the
// scriptable half of the flight recorder: CI and the smoke scripts use it
// to assert a recorded trace is well-formed without loading Perfetto.
//
// Each argument is validated independently; "-" (or no arguments) reads
// stdin. The exit status is non-zero if any input fails validation.
// -phases breaks a trace down by algorithm phase; -by-lane breaks a merged
// fleet trace down by process track (the coordinator plus one track per
// shard peer), which is how to check every peer's lane made it into a
// scatter-gather recording.
//
// Example:
//
//	rpmine -input shop.tdb -per 720 -minps 20 -trace-out run.json
//	rptrace run.json
//	run.json: valid: 14 spans on 3 lanes, 2.41ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, dst io.Writer) error {
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rptrace", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "validate only, printing nothing on success")
	phases := fs.Bool("phases", false, "additionally print per-phase span counts and times")
	byLane := fs.Bool("by-lane", false, "additionally print per-process-track totals (coordinator and each shard peer)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	for _, path := range paths {
		if err := check(path, *quiet, *phases, *byLane, out); err != nil {
			return err
		}
	}
	return out.Err()
}

func check(path string, quiet, phases, byLane bool, out *cliio.Writer) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	spans, err := obs.ValidateTraceEvents(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if quiet {
		return nil
	}

	// The file just validated against this exact shape; re-decode for the
	// summary.
	var f struct {
		TraceEvents []obs.TraceEvent  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	type phaseAgg struct {
		name  string
		count int
		durUS float64
	}
	var (
		order    []string
		byPhase  = map[string]*phaseAgg{}
		lanes    = map[int]bool{}
		min, max float64
	)
	first := true
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		lanes[ev.Tid] = true
		if first || ev.Ts < min {
			min = ev.Ts
		}
		if first || ev.Ts+ev.Dur > max {
			max = ev.Ts + ev.Dur
		}
		first = false
		name := ev.Cat
		if name == "" {
			name = ev.Name
		}
		agg := byPhase[name]
		if agg == nil {
			agg = &phaseAgg{name: name}
			byPhase[name] = agg
			order = append(order, name)
		}
		agg.count++
		agg.durUS += ev.Dur
	}
	fmt.Fprintf(out, "%s: valid: %d spans on %d lanes, %.2fms\n", path, spans, len(lanes), (max-min)/1e3)
	// The exporter writes the fleet-wide dropped-span total (the timelines'
	// dropped counters, coordinator plus grafted peers) as a bare integer;
	// parse it so garbage fails loudly instead of echoing through.
	if raw := f.OtherData["droppedSpans"]; raw != "" {
		dropped, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: otherData.droppedSpans %q is not a count: %w", path, raw, err)
		}
		if dropped > 0 {
			fmt.Fprintf(out, "  dropped spans: %d (retention cap reached; aggregates still complete)\n", dropped)
		}
	}
	// rpserved embeds the producing request's resource cost; surface it the
	// same way — parsed strictly, printed only when present.
	if raw := f.OtherData["requestAllocBytes"]; raw != "" {
		alloc, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: otherData.requestAllocBytes %q is not a byte count: %w", path, raw, err)
		}
		line := fmt.Sprintf("  request cost: %d bytes allocated", alloc)
		if raw := f.OtherData["requestCPUMS"]; raw != "" {
			cpuMS, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("%s: otherData.requestCPUMS %q is not a duration: %w", path, raw, err)
			}
			line += fmt.Sprintf(", %.1fms CPU", cpuMS)
		}
		fmt.Fprintln(out, line)
	}
	if phases {
		for _, name := range order {
			agg := byPhase[name]
			fmt.Fprintf(out, "  %-12s %4d span(s) %10.2fms\n", agg.name, agg.count, agg.durUS/1e3)
		}
	}
	if byLane {
		printByLane(f.TraceEvents, out)
	}
	return nil
}

// printByLane summarizes a trace per process track: in a merged fleet
// trace, pid 1 is the coordinator and each shard peer has its own pid, so
// this is the per-peer breakdown of where span time went. Track names come
// from the process_name metadata events.
func printByLane(events []obs.TraceEvent, out *cliio.Writer) {
	type track struct {
		name    string
		spans   int
		instant int
		lanes   map[int]bool
		durUS   float64
	}
	tracks := map[int]*track{}
	get := func(pid int) *track {
		t := tracks[pid]
		if t == nil {
			t = &track{lanes: map[int]bool{}}
			tracks[pid] = t
		}
		return t
	}
	for _, ev := range events {
		t := get(ev.Pid)
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				if n, ok := ev.Args["name"].(string); ok {
					t.name = n
				}
			}
		case "X":
			t.spans++
			t.lanes[ev.Tid] = true
			t.durUS += ev.Dur
		case "i":
			t.instant++
		}
	}
	pids := make([]int, 0, len(tracks))
	for pid := range tracks {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		t := tracks[pid]
		name := t.name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(out, "  pid %d  %-32s %4d span(s) on %d lane(s) %10.2fms", pid, name, t.spans, len(t.lanes), t.durUS/1e3)
		if t.instant > 0 {
			fmt.Fprintf(out, "  %d event(s)", t.instant)
		}
		fmt.Fprintf(out, "\n")
	}
}
