// Command rpbenchdiff compares two benchmark runs and reports which
// benchmarks shifted significantly — a benchstat-style gate over the
// repo's tracked baselines.
//
// Usage:
//
//	rpbenchdiff [-metric ns/op] [-alpha 0.05] [-threshold 5] \
//	            [-format text|markdown] old new
//
// old and new are each either a tracked BENCH_*.json report (the
// cmd/benchfmt shape) or raw `go test -bench -count=N` text; the format is
// auto-detected, and the two sides may differ. Each benchmark's repeated
// runs become a sample set, old and new are compared with a two-sided
// Mann–Whitney U test (rank-based, so no normality assumption about timing
// noise), and a shift counts only when p < alpha AND the median moved by
// at least -threshold percent. All compared units are smaller-is-better,
// so an upward significant shift is a regression.
//
// The exit status is the gate: 0 when no benchmark regressed
// significantly, 1 when at least one did, 2 on usage or input errors.
// `make bench-diff` wires this against BENCH_core.json, and CI runs it as
// an advisory job.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/cliio"
)

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbenchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "rpbenchdiff: %d significant regression(s)\n", regressions)
		os.Exit(1)
	}
}

func run(args []string, dst io.Writer) (regressions int, err error) {
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpbenchdiff", flag.ContinueOnError)
	def := bench.DefaultDiffOptions()
	var (
		metric    = fs.String("metric", "ns/op", "metric to compare")
		alpha     = fs.Float64("alpha", def.Alpha, "significance level for the Mann-Whitney test")
		threshold = fs.Float64("threshold", def.ThresholdPct, "minimum median shift in percent to count a significant result")
		format    = fs.String("format", "text", "output format: text or markdown")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: rpbenchdiff [flags] old new (bench text or BENCH_*.json each)")
	}
	if *format != "text" && *format != "markdown" {
		return 0, fmt.Errorf("-format %q: want text or markdown", *format)
	}

	oldS, err := bench.ReadSamples(fs.Arg(0), *metric)
	if err != nil {
		return 0, err
	}
	newS, err := bench.ReadSamples(fs.Arg(1), *metric)
	if err != nil {
		return 0, err
	}
	rows := bench.DiffSamples(oldS, newS, bench.DiffOptions{Alpha: *alpha, ThresholdPct: *threshold})
	if *format == "markdown" {
		fmt.Fprint(out, bench.FormatDiffMarkdown(rows, *metric))
	} else {
		fmt.Fprint(out, bench.FormatDiffText(rows, *metric))
	}
	if err := out.Err(); err != nil {
		return 0, err
	}
	return bench.Regressions(rows), nil
}
