package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture writes `go test -bench` style output: n samples of one benchmark
// around base ns/op with a deterministic jitter pattern.
func fixture(t *testing.T, name string, base float64, n int) string {
	t.Helper()
	jitter := []float64{0, 0.021, -0.017, 0.008, -0.026, 0.013, -0.004, 0.029, -0.011, 0.018}
	var b strings.Builder
	b.WriteString("goos: linux\npkg: example/fixture\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "BenchmarkMine-8 \t 1000\t %.0f ns/op\n", base*(1+jitter[i%len(jitter)]))
	}
	b.WriteString("PASS\n")
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagsRegression(t *testing.T) {
	oldPath := fixture(t, "old.txt", 1000, 10)
	newPath := fixture(t, "new.txt", 1200, 10)
	var out strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1; output:\n%s", regressions, out.String())
	}
	for _, want := range []string{"BenchmarkMine", "regression", "+"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSilentOnIdenticalRuns(t *testing.T) {
	oldPath := fixture(t, "old.txt", 1000, 10)
	newPath := fixture(t, "new.txt", 1000, 10)
	var out strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0; output:\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "~") {
		t.Errorf("output should mark the row statistically indistinguishable:\n%s", out.String())
	}
}

func TestRunMarkdownAndErrors(t *testing.T) {
	oldPath := fixture(t, "old.txt", 1000, 5)
	var out strings.Builder
	if _, err := run([]string{"-format", "markdown", oldPath, oldPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| BenchmarkMine |") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}

	if _, err := run([]string{oldPath}, &out); err == nil {
		t.Error("one argument should be a usage error")
	}
	if _, err := run([]string{"-format", "csv", oldPath, oldPath}, &out); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := run([]string{oldPath, filepath.Join(t.TempDir(), "missing.txt")}, &out); err == nil {
		t.Error("missing input file should error")
	}
}
