// Command rpcompare runs the three pattern models of the paper's Section
// 5.4 — periodic-frequent patterns, recurring patterns and p-patterns — on
// one transaction file with shared thresholds, and reports their counts,
// longest patterns and a sample of each (an interactive version of Table 8).
//
// Example:
//
//	rpgen -dataset shop14 -out shop.tdb
//	rpcompare -input shop.tdb -per 1440 -sup-pct 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/recurpat/rp/internal/baseline/pfgrowth"
	"github.com/recurpat/rp/internal/baseline/ppattern"
	"github.com/recurpat/rp/internal/cliio"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpcompare:", err)
		os.Exit(1)
	}
}

func run(args []string, dst io.Writer) error {
	// Latch write errors once instead of checking every print.
	out := cliio.NewWriter(dst)
	fs := flag.NewFlagSet("rpcompare", flag.ContinueOnError)
	var (
		input  = fs.String("input", "-", "transaction file ('-' for stdin)")
		per    = fs.Int64("per", 1440, "period threshold")
		window = fs.Int64("window", 1, "p-pattern time tolerance w")
		supPct = fs.Float64("sup-pct", 0.1, "minSup and minPS as a percentage of |TDB|")
		minRec = fs.Int("minrec", 1, "minRec for the recurring pattern model")
		sample = fs.Int("sample", 3, "number of example patterns to print per model")
		limit  = fs.Int("limit", 2_000_000, "p-pattern safety ceiling (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	db, err := tsdb.ReadAny(r)
	if err != nil {
		return err
	}
	minSup := core.MinPSFromPercent(db, *supPct)
	fmt.Fprintln(out, "# db:", tsdb.ComputeStats(db))
	fmt.Fprintf(out, "# per=%d w=%d minSup=minPS=%d (%.2f%%) minRec=%d\n\n",
		*per, *window, minSup, *supPct, *minRec)

	pf, err := pfgrowth.Mine(db, pfgrowth.Options{MinSup: minSup, MaxPer: *per, Limit: *limit})
	if err != nil {
		return err
	}
	pfTrunc := ""
	if pf.Truncated {
		pfTrunc = " (truncated at the safety ceiling)"
	}
	fmt.Fprintf(out, "periodic-frequent patterns: %d (max length %d)%s\n", len(pf.Patterns), pf.MaxLen(), pfTrunc)
	for i := 0; i < *sample && i < len(pf.Patterns); i++ {
		p := pf.Patterns[i]
		fmt.Fprintf(out, "  %s sup=%d periodicity=%d\n", db.FormatPattern(p.Items), p.Support, p.Periodicity)
	}

	rec, err := core.Mine(db, core.Options{Per: *per, MinPS: minSup, MinRec: *minRec})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recurring patterns:         %d (max length %d)\n", len(rec.Patterns), rec.MaxLen())
	for i := 0; i < *sample && i < len(rec.Patterns); i++ {
		fmt.Fprintf(out, "  %s\n", rec.Patterns[i].Format(db.Dict))
	}

	// minSup-1: the p-pattern threshold counts inter-arrival times, not
	// occurrences (see bench.Table8).
	ppMinSup := minSup - 1
	if ppMinSup < 1 {
		ppMinSup = 1
	}
	pp, err := ppattern.Mine(db, ppattern.Options{Per: *per, Window: *window, MinSup: ppMinSup, Limit: *limit})
	if err != nil {
		return err
	}
	trunc := ""
	if pp.Truncated {
		trunc = " (truncated at the safety ceiling)"
	}
	fmt.Fprintf(out, "p-patterns:                 %d (max length %d)%s\n", len(pp.Patterns), pp.MaxLen(), trunc)
	for i := 0; i < *sample && i < len(pp.Patterns); i++ {
		p := pp.Patterns[i]
		fmt.Fprintf(out, "  %s sup=%d periodic=%d\n", db.FormatPattern(p.Items), p.Support, p.Periodic)
	}
	return out.Err()
}
