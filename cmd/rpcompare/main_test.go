package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInput(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	// Dense pair x,y plus a rare bursty pair r,s in two windows.
	for ts := 1; ts <= 200; ts++ {
		row := "x y"
		if (ts >= 20 && ts < 40) || (ts >= 120 && ts < 140) {
			row += " r s"
		}
		b.WriteString(strings.Join([]string{itoa(ts), row}, "\t") + "\n")
	}
	path := filepath.Join(t.TempDir(), "cmp.tdb")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestCompareRuns(t *testing.T) {
	path := writeInput(t)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-per", "5", "-sup-pct", "8", "-minrec", "2", "-sample", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"periodic-frequent patterns:", "recurring patterns:", "p-patterns:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// The rare bursty pair must show up for the recurring model at
	// minRec=2; PF patterns (complete cyclicity) must exclude it.
	if !strings.Contains(s, "{r,s}") && !strings.Contains(s, "{s,r}") {
		t.Errorf("recurring sample missing the bursty pair:\n%s", s)
	}
}

func TestCompareErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-input", "/does/not/exist"}, &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
}
