// Package rp discovers recurring patterns in time series: itemsets that
// appear periodically during particular time intervals of a series, rather
// than throughout it. It implements the model and the RP-growth algorithm of
// R. Uday Kiran, Haichuan Shang, Masashi Toyoda and Masaru Kitsuregawa,
// "Discovering Recurring Patterns in Time Series", EDBT 2015.
//
// A time series is supplied as a sequence of (item, timestamp) events; the
// library models it as a temporally ordered transactional database and mines
// every pattern X whose recurrence — the number of time windows in which X
// reappears at least MinPS times with consecutive gaps of at most Per —
// reaches MinRec. Each reported pattern carries its support, recurrence, and
// the interesting periodic intervals with their periodic supports.
//
// Quick start:
//
//	b := rp.NewBuilder()
//	b.Add("jackets", ts1)
//	b.Add("gloves", ts1)
//	// ... more events ...
//	db := b.Build()
//	patterns, err := rp.Mine(db, rp.Options{Per: 2, MinPS: 3, MinRec: 2})
//
// The companion packages under internal/ house the substrate (tsdb), the
// algorithm internals (core), the comparison baselines (baseline/ppattern,
// baseline/pfgrowth), the dataset simulators (gen) and the extensions
// (ext); the cmd/ tools and examples/ programs exercise everything
// end-to-end.
package rp

import (
	"context"
	"io"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Foundation types, re-exported from the substrate.
type (
	// Event is a single (item, timestamp) observation.
	Event = tsdb.Event
	// EventSequence is an ordered collection of events.
	EventSequence = tsdb.EventSequence
	// DB is a temporally ordered transactional database built from a series.
	DB = tsdb.DB
	// Builder accumulates events into a DB.
	Builder = tsdb.Builder
	// ItemID is the dense identifier the miners use for items.
	ItemID = tsdb.ItemID
	// Stats summarizes a database.
	Stats = tsdb.Stats
)

// Model types, re-exported from the core.
type (
	// Options holds the Per / MinPS / MinRec thresholds and execution
	// knobs. Options.Validate reports the first violated constraint; every
	// entry point (Mine, MineFunc, NewIncremental, the CLIs, rpserved)
	// validates with it and reports the same error text. The constraints:
	//
	//	Field        Constraint        Meaning when violated
	//	Per          > 0               no inter-arrival time could be periodic
	//	MinPS        > 0               an empty interval would be interesting
	//	MinRec       > 0               every pattern would trivially recur
	//	MaxLen       >= 0              (0 = unlimited pattern length)
	//	Parallelism  >= 0              (0 or 1 = the sequential algorithm)
	Options = core.Options
	// Interval is a periodic interval [Start, End] with periodic support PS.
	Interval = core.Interval
	// Result is a mining result: patterns plus optional search statistics.
	Result = core.Result
	// MineStats counts mining work (populated with Options.CollectStats).
	MineStats = core.MineStats
	// CancelError is returned by the *Context entry points when mining is
	// cut short; it unwraps to ctx.Err() and carries partial MineStats
	// when Options.CollectStats was set.
	CancelError = core.CancelError
)

// Observability types, re-exported from the tracing layer.
type (
	// Trace receives per-phase wall time and work counts for mining runs
	// when attached via Options.Trace (nil = zero overhead). One Trace
	// may aggregate any number of runs, concurrent ones included; see
	// NewTrace and Trace.Report.
	Trace = obs.Trace
	// PhaseReport is a snapshot of a Trace: per-phase times mapped to the
	// paper's algorithm steps (initial scan, tree build, subtree mining,
	// finalize, plus nested ts-merge and Erec-prune work counts). Its
	// String method renders the phase table printed by rpmine -phases.
	PhaseReport = obs.PhaseReport
	// Timeline is the flight recorder: attached to a Trace via
	// Trace.AttachTimeline, it retains a bounded per-run span timeline
	// (every phase span and mining subtree task, with timestamps and
	// nested work counters) on top of the aggregate phase accumulators.
	Timeline = obs.Timeline
	// TimelineSnapshot is a point-in-time copy of a Timeline, the input to
	// WriteTraceEvents.
	TimelineSnapshot = obs.TimelineSnapshot
	// SpanRecord is one retained span of a recorded run.
	SpanRecord = obs.SpanRecord
)

// DefaultTimelineSpans is the span retention cap NewTimeline resolves a
// zero cap to.
const DefaultTimelineSpans = obs.DefaultTimelineSpans

// NewTrace returns an empty phase trace, ready to attach to Options.Trace:
//
//	o := rp.Options{Per: 360, MinPS: 20, MinRec: 2, Trace: rp.NewTrace()}
//	patterns, err := rp.Mine(db, o)
//	fmt.Print(o.Trace.Report())
func NewTrace() *Trace { return obs.NewTrace() }

// NewTimeline returns an empty span timeline retaining up to maxSpans
// spans (0 = DefaultTimelineSpans; further spans only feed the aggregates
// and are counted as dropped). Attach it to a trace to record a run:
//
//	o := rp.Options{Per: 360, MinPS: 20, MinRec: 2, Trace: rp.NewTrace()}
//	tl := rp.NewTimeline(0)
//	o.Trace.AttachTimeline(tl)
//	patterns, err := rp.Mine(db, o)
//	err = rp.WriteTraceEvents(f, "my run", tl.Snapshot())
func NewTimeline(maxSpans int) *Timeline { return obs.NewTimeline(maxSpans) }

// WriteTraceEvents renders a recorded timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing; name labels
// the process track. Concurrent mining tasks land on distinct lanes.
func WriteTraceEvents(w io.Writer, name string, snap TimelineSnapshot) error {
	return obs.WriteTraceEvents(w, name, snap)
}

// ValidateTraceEvents checks that r holds well-formed Chrome trace-event
// JSON of the shape WriteTraceEvents produces and returns the number of
// span events. The rptrace command wraps it for scripts.
func ValidateTraceEvents(r io.Reader) (spans int, err error) {
	return obs.ValidateTraceEvents(r)
}

// NewBuilder returns an empty database builder.
func NewBuilder() *Builder { return tsdb.NewBuilder() }

// FromEvents builds a database directly from an event sequence.
func FromEvents(events EventSequence) *DB { return tsdb.FromEvents(events) }

// ReadDB parses a database from any supported on-disk format — the text
// transaction format ("timestamp<TAB>item item ..." lines), the compact v1
// binary format, or the mmap-able v2 layout — detected automatically.
// Seekable and in-memory text inputs parse through the chunked parallel
// scanner; use ReadDBFile or OpenDBFile when the input is a file.
func ReadDB(r io.Reader) (*DB, error) { return tsdb.ReadAny(r) }

// ReadDBFile loads a database file in any supported format fully into
// memory. Text parses in parallel; the v2 mapped layout materializes its
// view without a per-item decode loop.
func ReadDBFile(path string) (*DB, error) { return tsdb.ReadFile(path) }

// DBFile is an opened database file (see OpenDBFile). Close releases the
// mapping when the file was memory-mapped; the DB must not be used after.
type DBFile = tsdb.File

// OpenDBFile opens a database file in any supported format. Files in the
// v2 mapped layout are memory-mapped where the platform allows: the
// timestamp and item sections are used in place, so opening is metadata
// validation rather than a decode of every item. Other formats load as
// ReadDBFile does. Callers own the returned handle and must Close it.
func OpenDBFile(path string) (*DBFile, error) { return tsdb.OpenFile(path) }

// WriteDB serializes a database in the text transaction format.
func WriteDB(w io.Writer, db *DB) error { return tsdb.Write(w, db) }

// WriteDBBinary serializes a database in the compact binary format
// (typically several times smaller than the text format).
func WriteDBBinary(w io.Writer, db *DB) error { return tsdb.WriteBinary(w, db) }

// WriteDBMapped serializes a database in the mmap-able v2 layout: aligned
// little-endian sections behind a versioned header, loadable with
// OpenDBFile as a read-only view with no decode loop. Timestamps must be
// strictly increasing (guaranteed for databases built by this package).
func WriteDBMapped(w io.Writer, db *DB) error { return tsdb.WriteMapped(w, db) }

// ComputeStats summarizes a database.
func ComputeStats(db *DB) Stats { return tsdb.ComputeStats(db) }

// MinPSFromPercent converts a percentage of the database size into an
// absolute minimum periodic support (at least 1), matching how the paper
// states its thresholds.
func MinPSFromPercent(db *DB, percent float64) int {
	return core.MinPSFromPercent(db, percent)
}

// Pattern is a recurring pattern with item names resolved.
type Pattern struct {
	// Items are the pattern's item names, in the dictionary's ID order.
	Items []string
	// Support is the number of transactions containing the pattern.
	Support int
	// Recurrence is the number of interesting periodic intervals.
	Recurrence int
	// Intervals are the interesting periodic intervals in time order.
	Intervals []Interval
}

// Mine runs RP-growth on db and returns the recurring patterns with item
// names resolved, in canonical order (shortest patterns first, then by item
// ID). Use MineRaw to access ItemID-level results and mining statistics,
// and MineContext when the run must be cancellable.
func Mine(db *DB, o Options) ([]Pattern, error) {
	return MineContext(context.Background(), db, o)
}

// MineContext is Mine with cancellation: when ctx is cancelled or its
// deadline passes, mining stops at the next subtree-task boundary and the
// returned error is a *CancelError wrapping ctx.Err() — so
// errors.Is(err, context.Canceled) and errors.As(err, **CancelError) both
// work, and with Options.CollectStats set the CancelError carries the
// partial search statistics accumulated before the stop.
func MineContext(ctx context.Context, db *DB, o Options) ([]Pattern, error) {
	res, err := core.MineContext(ctx, db, o)
	if err != nil {
		return nil, err
	}
	return resolve(db, res), nil
}

// MineRaw runs RP-growth and returns the ItemID-level result, including
// MineStats when Options.CollectStats is set.
func MineRaw(db *DB, o Options) (*Result, error) { return core.Mine(db, o) }

// MineRawContext is MineRaw with cancellation (see MineContext).
func MineRawContext(ctx context.Context, db *DB, o Options) (*Result, error) {
	return core.MineContext(ctx, db, o)
}

// MineFunc streams recurring patterns to fn as they are discovered, with
// item names resolved; memory stays bounded by the mining structures
// rather than the result set. Returning false stops mining early. Patterns
// arrive in discovery order, not the canonical order of Mine.
func MineFunc(db *DB, o Options, fn func(Pattern) bool) error {
	return MineFuncContext(context.Background(), db, o, fn)
}

// MineFuncContext is MineFunc with cancellation: when ctx fires, the
// stream stops at the next subtree-task boundary and a *CancelError
// wrapping ctx.Err() is returned. Patterns already delivered stay
// delivered; fn returning false remains an error-free early stop.
func MineFuncContext(ctx context.Context, db *DB, o Options, fn func(Pattern) bool) error {
	return core.MineFuncContext(ctx, db, o, func(p core.Pattern) bool {
		return fn(Pattern{
			Items:      db.PatternNames(p.Items),
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  p.Intervals,
		})
	})
}

func resolve(db *DB, res *core.Result) []Pattern {
	out := make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out[i] = Pattern{
			Items:      db.PatternNames(p.Items),
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  p.Intervals,
		}
	}
	return out
}
