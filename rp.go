// Package rp discovers recurring patterns in time series: itemsets that
// appear periodically during particular time intervals of a series, rather
// than throughout it. It implements the model and the RP-growth algorithm of
// R. Uday Kiran, Haichuan Shang, Masashi Toyoda and Masaru Kitsuregawa,
// "Discovering Recurring Patterns in Time Series", EDBT 2015.
//
// A time series is supplied as a sequence of (item, timestamp) events; the
// library models it as a temporally ordered transactional database and mines
// every pattern X whose recurrence — the number of time windows in which X
// reappears at least MinPS times with consecutive gaps of at most Per —
// reaches MinRec. Each reported pattern carries its support, recurrence, and
// the interesting periodic intervals with their periodic supports.
//
// Quick start:
//
//	b := rp.NewBuilder()
//	b.Add("jackets", ts1)
//	b.Add("gloves", ts1)
//	// ... more events ...
//	db := b.Build()
//	patterns, err := rp.Mine(db, rp.Options{Per: 2, MinPS: 3, MinRec: 2})
//
// The companion packages under internal/ house the substrate (tsdb), the
// algorithm internals (core), the comparison baselines (baseline/ppattern,
// baseline/pfgrowth), the dataset simulators (gen) and the extensions
// (ext); the cmd/ tools and examples/ programs exercise everything
// end-to-end.
package rp

import (
	"io"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// Foundation types, re-exported from the substrate.
type (
	// Event is a single (item, timestamp) observation.
	Event = tsdb.Event
	// EventSequence is an ordered collection of events.
	EventSequence = tsdb.EventSequence
	// DB is a temporally ordered transactional database built from a series.
	DB = tsdb.DB
	// Builder accumulates events into a DB.
	Builder = tsdb.Builder
	// ItemID is the dense identifier the miners use for items.
	ItemID = tsdb.ItemID
	// Stats summarizes a database.
	Stats = tsdb.Stats
)

// Model types, re-exported from the core.
type (
	// Options holds the Per / MinPS / MinRec thresholds and execution knobs.
	Options = core.Options
	// Interval is a periodic interval [Start, End] with periodic support PS.
	Interval = core.Interval
	// Result is a mining result: patterns plus optional search statistics.
	Result = core.Result
	// MineStats counts mining work (populated with Options.CollectStats).
	MineStats = core.MineStats
)

// NewBuilder returns an empty database builder.
func NewBuilder() *Builder { return tsdb.NewBuilder() }

// FromEvents builds a database directly from an event sequence.
func FromEvents(events EventSequence) *DB { return tsdb.FromEvents(events) }

// ReadDB parses a database from either supported on-disk format: the text
// transaction format ("timestamp<TAB>item item ..." lines) or the compact
// binary format, detected automatically.
func ReadDB(r io.Reader) (*DB, error) { return tsdb.ReadAny(r) }

// WriteDB serializes a database in the text transaction format.
func WriteDB(w io.Writer, db *DB) error { return tsdb.Write(w, db) }

// WriteDBBinary serializes a database in the compact binary format
// (typically several times smaller than the text format).
func WriteDBBinary(w io.Writer, db *DB) error { return tsdb.WriteBinary(w, db) }

// ComputeStats summarizes a database.
func ComputeStats(db *DB) Stats { return tsdb.ComputeStats(db) }

// MinPSFromPercent converts a percentage of the database size into an
// absolute minimum periodic support (at least 1), matching how the paper
// states its thresholds.
func MinPSFromPercent(db *DB, percent float64) int {
	return core.MinPSFromPercent(db, percent)
}

// Pattern is a recurring pattern with item names resolved.
type Pattern struct {
	// Items are the pattern's item names, in the dictionary's ID order.
	Items []string
	// Support is the number of transactions containing the pattern.
	Support int
	// Recurrence is the number of interesting periodic intervals.
	Recurrence int
	// Intervals are the interesting periodic intervals in time order.
	Intervals []Interval
}

// Mine runs RP-growth on db and returns the recurring patterns with item
// names resolved, in canonical order (shortest patterns first, then by item
// ID). Use MineRaw to access ItemID-level results and mining statistics.
func Mine(db *DB, o Options) ([]Pattern, error) {
	res, err := core.Mine(db, o)
	if err != nil {
		return nil, err
	}
	return resolve(db, res), nil
}

// MineRaw runs RP-growth and returns the ItemID-level result, including
// MineStats when Options.CollectStats is set.
func MineRaw(db *DB, o Options) (*Result, error) { return core.Mine(db, o) }

// MineFunc streams recurring patterns to fn as they are discovered, with
// item names resolved; memory stays bounded by the mining structures
// rather than the result set. Returning false stops mining early. Patterns
// arrive in discovery order, not the canonical order of Mine.
func MineFunc(db *DB, o Options, fn func(Pattern) bool) error {
	return core.MineFunc(db, o, func(p core.Pattern) bool {
		return fn(Pattern{
			Items:      db.PatternNames(p.Items),
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  p.Intervals,
		})
	})
}

func resolve(db *DB, res *core.Result) []Pattern {
	out := make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out[i] = Pattern{
			Items:      db.PatternNames(p.Items),
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  p.Intervals,
		}
	}
	return out
}
